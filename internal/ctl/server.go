package ctl

import (
	"fmt"
	"net"
	"sync"
	"time"

	"netupdate/internal/core"
	"netupdate/internal/fault"
	"netupdate/internal/flow"
	"netupdate/internal/obs"
	"netupdate/internal/repl"
	"netupdate/internal/sched"
	"netupdate/internal/sim"
	"netupdate/internal/snapshot"
	"netupdate/internal/topology"
	"netupdate/internal/wal"
)

// Server owns live network state and schedules submitted update events.
// All state is confined to one goroutine (the state loop); connection
// handlers communicate with it through a command channel, so the sim
// engine and network never see concurrent access.
type Server struct {
	engine    *sim.Engine
	planner   *core.Planner
	sched     sched.Scheduler
	scheduler string
	numNodes  int

	// Telemetry: every server carries a ring-buffered tracer (OpTrace
	// reads it in the state loop) and a metrics registry whose values are
	// atomics, safe to scrape over HTTP while the state loop runs.
	registry *obs.Registry
	ring     *obs.RingSink
	ingest   *obs.IngestMetrics

	// Latency span pipeline: the recorder is state-loop confined (like
	// the engine it instruments); stage records go out through a bounded
	// async sink so a slow span consumer can never backpressure the loop.
	// lat and spans always exist — histograms feed /metrics and Stats
	// even when no span sink is configured.
	lat       *obs.LatencyMetrics
	spans     *obs.SpanRecorder
	spanSink  obs.Sink // as configured by WithSpanSink (nil = none)
	spanAsync *obs.AsyncSink

	// watermark bounds the update queue: submissions arriving at or past
	// it are rejected with a typed overload response instead of queued.
	watermark int

	// Event table: every event the server ever admitted (or minted from a
	// fault), in admission order. State-loop confined once the loop runs;
	// fields (not loop locals) so WAL recovery can seed them beforehand.
	events map[int64]*core.Event
	order  []int64
	nextID int64

	// Durable write-ahead log (nil when disabled). State-loop confined
	// once the loop runs: stageSubmit appends admitted events, flush
	// group-commits before replies go out (append-before-ack), and the
	// checkpoint cadence rotates segments. A WAL write failure is
	// fail-stop: continuing without durability would silently break the
	// recovery contract, so the state loop panics instead.
	walLog    *wal.Log
	wal       *wal.Writer
	walMeta   wal.Meta
	walSeq    int64
	ckptEvery int
	sinceCkpt int
	walMet    *obs.WALMetrics

	// WAL replication hub (nil without a WAL). Role and term are state-
	// loop confined; see repl.go for the full confinement story.
	repl    *replState
	replCfg *ReplicationConfig

	// shardID and idStride place this engine in a sharded deployment:
	// shard s of N mints event IDs s, s+N, s+2N, … so IDs are globally
	// unique across the fleet and a gateway can route status lookups by
	// (id-1) mod N. Unsharded servers keep shardID 0, stride 1 — the
	// historical ID sequence.
	shardID  int
	idStride int64

	// wire owns the accept loop, open-connection set and codec handling;
	// closing mirrors its shutdown channel for the state loop and the
	// replication goroutines.
	wire    *WireServer
	closing <-chan struct{}

	cmds chan command
	// loopStop tells the state loop's shutdown drain that every
	// connection handler has exited, so no further command can arrive
	// and the loop may return. Closed by Close after the wire drains.
	loopStop chan struct{}
	loop     sync.WaitGroup // state loop

	mu     sync.Mutex
	closed bool
}

// command is one request routed to the state loop.
type command struct {
	req Request
	// repl, when set, marks an internal replication command instead of
	// a wire request (req is ignored); the answer rides the Response's
	// unexported repl field.
	repl *replCmd
	// ingestWall is the server wall clock when the request was decoded
	// off the wire (span pipeline's ingest stamp).
	ingestWall int64
	reply      chan Response
}

// traceRingSize bounds the server's trace ring: enough for a few
// thousand rounds of history without unbounded growth.
const traceRingSize = 4096

// DefaultHighWatermark is the intake bound used when no option overrides
// it: past this many queued events, submissions are rejected with an
// overload response instead of growing the queue without bound.
const DefaultHighWatermark = 4096

// cmdBacklog is the command channel's buffer: large enough that a burst
// of connection handlers lands in one state-loop wakeup (and is admitted
// into the scheduler queue in bulk) instead of costing one wakeup each.
const cmdBacklog = 1024

// spanSinkDepth bounds the async span sink's ring: deep enough to absorb
// a burst of stage records while the consumer flushes, small enough that
// a stuck consumer costs bounded memory (overflow drops and counts).
const spanSinkDepth = 8192

// ServerOption configures a Server at construction.
type ServerOption func(*Server)

// WithSpanSink routes stage-level latency span records (obs.KindStage)
// to sink, e.g. an obs.JSONLSink over a span file. The server wraps the
// sink in a bounded async stage so span emission never blocks the state
// loop; overflow drops records and counts them in
// obs_spans_dropped_total. The sink receives records from a background
// goroutine and is flushed and released by Server.Close.
func WithSpanSink(sink obs.Sink) ServerOption {
	return func(s *Server) { s.spanSink = sink }
}

// WithHighWatermark sets the intake bound: submissions arriving when the
// update queue holds n or more events are answered with a typed
// overload response carrying the queue depth and a retry-after hint.
// n <= 0 keeps DefaultHighWatermark.
func WithHighWatermark(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.watermark = n
		}
	}
}

// WithShard places the server in a sharded deployment as shard id (1-
// based) of count engines: event IDs stride by count starting at id, so
// every shard mints from a disjoint ID lattice, submit verdicts carry
// the shard, and the WAL meta records the placement. id/count outside
// 1 <= id <= count are ignored (the unsharded default).
func WithShard(id, count int) ServerOption {
	return func(s *Server) {
		if id < 1 || count < 1 || id > count {
			return
		}
		s.shardID = id
		s.idStride = int64(count)
		s.nextID = int64(id)
	}
}

// NewServer wraps a planner (owning a prepared network) and a scheduler.
// cfg is the virtual timing model used to compute per-event metrics.
//
// Deprecated: use New with a Config; this remains as a thin wrapper for
// existing callers.
func NewServer(planner *core.Planner, scheduler sched.Scheduler, cfg sim.Config, opts ...ServerOption) *Server {
	s := newServer(planner, scheduler, cfg, opts...)
	s.start()
	return s
}

// newServer builds a server without starting its state loop, so WAL
// recovery (NewServerWithWAL) can replay history into the engine while
// it is still single-threaded.
func newServer(planner *core.Planner, scheduler sched.Scheduler, cfg sim.Config, opts ...ServerOption) *Server {
	s := &Server{
		engine:    sim.NewEngine(planner, scheduler, cfg),
		planner:   planner,
		sched:     scheduler,
		scheduler: scheduler.Name(),
		numNodes:  planner.Network().Graph().NumNodes(),
		registry:  obs.NewRegistry(),
		ring:      obs.NewRingSink(traceRingSize),
		watermark: DefaultHighWatermark,
		events:    make(map[int64]*core.Event),
		nextID:    1,
		idStride:  1,
		cmds:      make(chan command, cmdBacklog),
		loopStop:  make(chan struct{}),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.ingest = obs.NewIngestMetrics(s.registry)
	s.ingest.Watermark.Set(int64(s.watermark))
	s.wire = &WireServer{
		Handle:      s.dispatchAt,
		Stream:      s.serveRepl,
		StreamMagic: repl.StreamMagic,
		FramesV1:    s.ingest.FramesV1,
		FramesV2:    s.ingest.FramesV2,
		CodecConns:  s.ingest.CodecV2Conns,
	}
	s.closing = s.wire.Closing()
	// Attach the tracer before the state loop starts so the engine never
	// sees a concurrent SetTracer.
	s.engine.SetTracer(obs.NewTracer(s.ring, obs.NewSimMetrics(s.registry)))
	s.lat = obs.NewLatencyMetrics(s.registry)
	var spanOut obs.Sink
	if s.spanSink != nil {
		s.spanAsync = obs.NewAsyncSink(s.spanSink, spanSinkDepth, s.lat.SpansDropped)
		spanOut = s.spanAsync
	}
	s.spans = obs.NewSpanRecorder(spanOut, s.lat)
	return s
}

// start launches the state loop. Call exactly once, after any recovery.
// The span recorder is attached here — after WAL replay — so replayed
// history re-executes without emitting span records or latency samples.
func (s *Server) start() {
	s.engine.SetSpans(s.spans)
	s.loop.Add(1)
	go s.stateLoop()
}

// Registry exposes the server's metric registry, e.g. for mounting
// obs.Handler on an HTTP listener. All registered values are atomics, so
// scraping is safe while the server runs.
func (s *Server) Registry() *obs.Registry { return s.registry }

// Serve accepts connections on l until Close. It returns ErrServerClosed
// after a clean shutdown.
func (s *Server) Serve(l net.Listener) error {
	return s.wire.Serve(l)
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	return s.wire.ListenAndServe(addr)
}

// Close stops accepting, closes open connections, and waits for the state
// loop and all handlers to exit. It is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	// Handlers may still have commands buffered in s.cmds; the state loop
	// keeps answering them (with ErrServerClosed) until every handler has
	// exited — wire.Close waits for that. Only then is it safe to let the
	// loop return: afterwards nobody is left to send.
	firstErr := s.wire.Close()
	// Replication goroutines (the follower stream, the heartbeater) also
	// send commands, so they too must be gone before the loop may stop.
	if s.repl != nil {
		s.repl.stopFollowing()
		s.repl.wg.Wait()
	}
	close(s.loopStop)
	s.loop.Wait()
	// The state loop has exited; flush and close the WAL so everything
	// appended is durable before the process goes away.
	if s.wal != nil {
		if err := s.wal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// Drain and release the span channel: nothing emits anymore, so Close
	// delivers every buffered stage record and flushes the inner sink.
	if s.spanAsync != nil {
		if err := s.spanAsync.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// dispatch routes a request to the state loop and waits for the answer.
func (s *Server) dispatch(req Request) Response {
	return s.dispatchAt(req, time.Now().UnixNano())
}

// dispatchAt is dispatch with an explicit ingest wall stamp (the
// WireServer stamps requests as they come off the wire).
func (s *Server) dispatchAt(req Request, ingestWall int64) Response {
	// Fast-fail once shutdown has begun, so new requests don't land in
	// the command buffer just to be refused by the shutdown drain.
	select {
	case <-s.closing:
		return Response{OK: false, Error: ErrServerClosed.Error()}
	default:
	}
	cmd := command{req: req, ingestWall: ingestWall, reply: make(chan Response, 1)}
	select {
	case s.cmds <- cmd:
		// A send that races shutdown is still answered: the state loop
		// drains s.cmds until all handlers (including this one) exit.
		return <-cmd.reply
	case <-s.closing:
		return Response{OK: false, Error: ErrServerClosed.Error()}
	}
}

// stateLoop owns the engine, queue and event table. It interleaves command
// processing with scheduling rounds: whenever the queue is non-empty it
// keeps running rounds, checking for new commands between rounds. Each
// wakeup drains the whole command backlog so a burst of submissions is
// admitted into the scheduler queue in bulk rather than one per wakeup.
func (s *Server) stateLoop() {
	defer s.loop.Done()
	var batch []command

	for {
		batch = batch[:0]
		// Block for work when idle; poll between rounds otherwise. A
		// following replica blocks even with a non-empty queue: its
		// engine may only advance through the replicated fold
		// (replayRecord steps to each record's round stamp), and
		// free-running rounds here would push the clock past the next
		// record's admission stamp and diverge the fold.
		if s.engine.QueueLen() == 0 || s.replFolding() {
			select {
			case cmd := <-s.cmds:
				batch = append(batch, cmd)
			case <-s.closing:
				s.drainOnClose()
				return
			}
		} else {
			select {
			case cmd := <-s.cmds:
				batch = append(batch, cmd)
			case <-s.closing:
				s.drainOnClose()
				return
			default:
				if _, err := s.engine.Step(); err != nil {
					// An executing event hit a hard error (invalid spec got
					// through validation, ledger bug): surface it loudly
					// rather than dying silently.
					panic(fmt.Sprintf("ctl: scheduling round: %v", err))
				}
				continue
			}
		}
		// Drain whatever else is already queued. No closing case here:
		// every drained command has a handler blocked on its reply, so we
		// must answer them all before the loop can exit.
		for draining := true; draining; {
			select {
			case cmd := <-s.cmds:
				batch = append(batch, cmd)
			default:
				draining = false
			}
		}
		s.handleBatch(batch)
		s.maybeCheckpoint()
	}
}

// drainOnClose answers every command still buffered — or sent while the
// shutdown races dispatch — with ErrServerClosed, returning only once
// Close has confirmed (via loopStop) that all connection handlers have
// exited. Returning any earlier would strand a buffered command with no
// receiver: its handler would block forever on the reply and Close would
// hang on conns.Wait.
func (s *Server) drainOnClose() {
	for {
		select {
		case cmd := <-s.cmds:
			cmd.reply <- Response{OK: false, Error: ErrServerClosed.Error()}
		case <-s.loopStop:
			return
		}
	}
}

// handleBatch processes one drained command batch (state loop only).
// Consecutive submissions are staged — IDs assigned, overload policy
// applied, replies computed — and admitted into the engine through one
// EnqueueBatch before any non-submit command observes the queue, and
// again at batch end. Replies for staged submissions are withheld until
// their events are actually enqueued, so a client that got an OK can
// immediately query the event's status.
func (s *Server) handleBatch(batch []command) {
	var staged []*core.Event
	var pending []command
	var replies []Response
	flush := func() {
		s.engine.EnqueueBatch(staged)
		if len(staged) > 0 {
			// One wall stamp per flush: the whole staged batch entered the
			// queue in one EnqueueBatch, so its events share an admit time.
			wall := time.Now().UnixNano()
			for _, ev := range staged {
				s.spans.Admitted(int64(ev.ID), wall, int64(ev.Arrival))
			}
		}
		// Append-before-ack: the WAL records for every staged admission
		// must be durable (per the sync policy) before any OK goes out.
		s.walCommit()
		if s.wal != nil && len(staged) > 0 {
			wall := time.Now().UnixNano()
			for _, ev := range staged {
				s.spans.WALCommitted(int64(ev.ID), wall, int64(ev.Arrival))
			}
		}
		staged = staged[:0]
		for i, cmd := range pending {
			cmd.reply <- replies[i]
		}
		pending, replies = pending[:0], replies[:0]
	}
	for _, cmd := range batch {
		if cmd.repl != nil {
			// Replication commands see a flushed sequence point: every
			// frame ≤ walSeq committed and published, nothing staged.
			flush()
			cmd.reply <- s.handleReplCmd(cmd.repl)
			continue
		}
		switch cmd.req.Op {
		case OpSubmit, OpSubmitBatch:
			pending = append(pending, cmd)
			replies = append(replies, s.stageSubmit(cmd.req, cmd.ingestWall, &staged))
		default:
			flush()
			cmd.reply <- s.handleRequest(cmd.req)
		}
	}
	flush()
}

// stageSubmit validates and stages the events of one submit or
// submit-batch request, applying the watermark policy against the
// effective depth (queued plus already staged). It returns the response
// to send once the staged events have been enqueued. ingestWall is the
// wall clock stamped when the request came off the wire; it opens each
// accepted event's latency span.
func (s *Server) stageSubmit(req Request, ingestWall int64, staged *[]*core.Event) Response {
	// Only the leader admits writes: a follower's state is a fold of the
	// leader's log, and a deposed leader writing would dual-write.
	if r := s.repl; r != nil && r.role != roleLeader {
		return s.notLeaderResponse()
	}
	specs := req.Events
	if req.Op == OpSubmit {
		specs = []EventSpec{*req.Event}
	}
	verdicts := make([]SubmitVerdict, len(specs))
	var overload *OverloadInfo
	var accepted int64
	var recs []wal.Record
	for i := range specs {
		if err := specs[i].Validate(s.numNodes); err != nil {
			verdicts[i] = SubmitVerdict{Error: err.Error()}
			continue
		}
		if depth := s.engine.QueueLen() + len(*staged); depth >= s.watermark {
			if overload == nil {
				overload = s.overloadInfo(depth)
			}
			verdicts[i] = SubmitVerdict{Error: ErrOverloaded.Error(), Overloaded: true}
			s.ingest.Rejected.Inc()
			continue
		}
		id := s.nextID
		s.nextID += s.idStride
		flows := make([]flow.Spec, len(specs[i].Flows))
		for j, f := range specs[i].Flows {
			flows[j] = flow.Spec{
				Src:    topology.NodeID(f.Src),
				Dst:    topology.NodeID(f.Dst),
				Demand: topology.Bandwidth(f.DemandBps),
				Size:   f.SizeBytes,
			}
		}
		kind := specs[i].Kind
		if kind == "" {
			kind = "submitted"
		}
		ev := core.NewEvent(flow.EventID(id), kind, s.engine.Clock(), flows)
		s.events[id] = ev
		s.order = append(s.order, id)
		*staged = append(*staged, ev)
		verdicts[i] = SubmitVerdict{OK: true, EventID: id, Shard: s.shardID}
		accepted++
		var sc obs.SpanContext
		if req.Span != nil {
			sc = *req.Span
		}
		s.spans.Opened(id, sc, ingestWall, int64(ev.Arrival))
		if s.wal != nil {
			rec := wal.Record{
				Type:   wal.TypeEvent,
				ID:     wal.ID{VT: int64(ev.Arrival)},
				Rounds: s.engine.Rounds(),
				Event: &wal.EventRecord{
					EventID:      id,
					Kind:         kind,
					Retry:        req.Retry,
					Flows:        make([]wal.FlowSpec, len(specs[i].Flows)),
					Origin:       sc.Origin,
					SubmitWallNs: sc.SubmitWallNs,
				},
			}
			for j, f := range specs[i].Flows {
				rec.Event.Flows[j] = wal.FlowSpec{
					Src: f.Src, Dst: f.Dst,
					DemandBps: f.DemandBps, SizeBytes: f.SizeBytes,
				}
			}
			recs = append(recs, rec)
		}
	}
	if accepted > 0 {
		s.ingest.Accepted.Add(accepted)
		s.ingest.Batches.Inc()
		s.ingest.BatchSize.Observe(accepted)
		if req.Retry {
			s.ingest.Retried.Add(accepted)
		}
	}
	if len(recs) > 0 {
		// One request, one batch stamp: the first record carries how many
		// events the request admitted, so replay can restore the batch
		// counters. Sequence numbers are assigned at append time — the
		// state loop is the only appender, so the records land contiguous.
		recs[0].Event.BatchSize = int(accepted)
		for i := range recs {
			s.walAppend(&recs[i])
		}
	}
	if req.Op == OpSubmit {
		v := verdicts[0]
		if !v.OK {
			return Response{OK: false, Error: v.Error, Overload: overload}
		}
		return Response{OK: true, EventID: v.EventID}
	}
	// Batch responses are request-level OK even when individual events
	// were rejected; per-event outcomes live in the verdicts.
	return Response{OK: true, Verdicts: verdicts, Overload: overload}
}

// overloadInfo builds the rejection payload for a submission refused at
// the given queue depth. The retry-after hint is deterministic in the
// depth — one millisecond per queued event, clamped to [5ms, 2s] — so a
// deeper queue pushes clients further out.
func (s *Server) overloadInfo(depth int) *OverloadInfo {
	hint := time.Duration(depth) * time.Millisecond
	if hint < 5*time.Millisecond {
		hint = 5 * time.Millisecond
	}
	if hint > 2*time.Second {
		hint = 2 * time.Second
	}
	return &OverloadInfo{
		QueueDepth:   depth,
		Watermark:    s.watermark,
		RetryAfterMs: hint.Milliseconds(),
	}
}

// handleRequest executes one request against the state (state loop only).
func (s *Server) handleRequest(req Request) Response {
	switch req.Op {
	case OpPing:
		// Feature negotiation: clients probe here before enabling binary
		// extensions a pre-feature server would reject.
		return Response{OK: true, Features: []string{FeatureSpanContext, FeatureShardVerdicts}}

	case OpStatus:
		ev, ok := s.events[req.EventID]
		if !ok {
			return Response{OK: true, Status: &EventStatus{EventID: req.EventID, State: StateUnknown}}
		}
		st := statusOf(req.EventID, ev)
		return Response{OK: true, Status: &st}

	case OpResults:
		var results []EventStatus
		for _, id := range s.order {
			if ev := s.events[id]; ev.Done {
				results = append(results, statusOf(id, ev))
			}
		}
		return Response{OK: true, Results: results}

	case OpSnapshot:
		return Response{OK: true, Snapshot: snapshot.Capture(s.planner.Network())}

	case OpStats:
		col := s.engine.Collector()
		net := s.planner.Network()
		met := s.engine.Tracer().Metrics()
		st := &Stats{
			Scheduler:               s.scheduler,
			Utilization:             net.Utilization(),
			FlowsPlaced:             len(net.Registry().Placed()),
			EventsQueued:            s.engine.QueueLen(),
			EventsDone:              col.Len(),
			TotalCostBps:            int64(col.TotalCost()),
			AvgECT:                  col.AvgECT(),
			TailECT:                 col.TailECT(),
			AvgQueuingDelay:         col.AvgQueuingDelay(),
			PlanTime:                col.PlanTime,
			VirtualClock:            s.engine.Clock(),
			ProbeCacheHits:          met.ProbeHits.Value(),
			ProbeCacheMisses:        met.ProbeMisses.Value(),
			ProbeHitRate:            met.ProbeHitRate.Value(),
			ProbeColdPlans:          met.ProbeCold.Value(),
			ProbeIncrementalReplans: met.ProbeIncremental.Value(),
			Rounds:                  met.Rounds.Value(),
			FaultsInjected:          col.FaultsInjected,
			LinksDown:               s.engine.LinksDown(),
			RepairEvents:            col.RepairEvents,
			FlowsDisrupted:          col.FlowsDisrupted,
			InstallRetries:          col.InstallRetries,
			InstallRollbacks:        col.InstallRollbacks,
			IngestWatermark:         s.watermark,
			IngestAccepted:          s.ingest.Accepted.Value(),
			IngestRejected:          s.ingest.Rejected.Value(),
			IngestRetried:           s.ingest.Retried.Value(),
			IngestBatches:           s.ingest.Batches.Value(),
			CodecV2Conns:            s.ingest.CodecV2Conns.Value(),
			FramesV1:                s.ingest.FramesV1.Value(),
			FramesV2:                s.ingest.FramesV2.Value(),
			LatencyE2EP50Ns:         s.lat.E2E.Percentile(50),
			LatencyE2EP95Ns:         s.lat.E2E.Percentile(95),
			LatencyE2EP99Ns:         s.lat.E2E.Percentile(99),
			LatencyE2EP999Ns:        s.lat.E2E.Percentile(99.9),
			LatencyQueueP50Ns:       s.lat.Queue.Percentile(50),
			LatencyQueueP99Ns:       s.lat.Queue.Percentile(99),
			LatencyRoundsP50Ns:      s.lat.Rounds.Percentile(50),
			LatencyRoundsP99Ns:      s.lat.Rounds.Percentile(99),
			SpansDropped:            s.lat.SpansDropped.Value(),
		}
		if s.shardID > 0 {
			st.ShardID = s.shardID
			st.Shards = int(s.idStride)
		}
		if s.walMet != nil {
			st.WALEnabled = true
			st.WALLastSeq = s.walMet.LastSeq.Value()
			st.WALCheckpointSeq = s.walMet.CheckpointSeq.Value()
			st.WALAppends = s.walMet.Appends.Value()
			st.WALCheckpoints = s.walMet.Checkpoints.Value()
			st.WALReplayed = s.walMet.Replayed.Value()
			st.WALRecoveryMs = s.walMet.RecoveryMs.Value()
		}
		if s.wal != nil {
			st.WALSyncPolicy = s.wal.Policy().String()
			st.WALFsyncP50Ns = s.lat.WALFsync.Percentile(50)
			st.WALFsyncP99Ns = s.lat.WALFsync.Percentile(99)
			st.WALFsyncCount = s.lat.WALFsync.Count()
		}
		if r := s.repl; r != nil {
			st.ReplRole = r.role
			st.ReplTerm = r.term
			st.ReplFollowers = int(r.nFollowers.Load())
			st.ReplSynced = int(r.nSynced.Load())
			if r.role == roleFollower {
				st.ReplLagRecords = max(0, r.leaderSeq.Load()-s.walSeq)
			} else {
				st.ReplLagRecords = r.met.LagRecords.Value()
			}
			st.ReplRecordsSent = r.met.RecordsSent.Value()
			st.ReplRecordsApplied = r.met.RecordsApplied.Value()
			st.ReplFollowerDrops = r.met.FollowerDrops.Value()
			st.ReplFailoverMs = r.failoverMs.Load()
		}
		return Response{OK: true, Stats: st}

	case OpTrace:
		return Response{OK: true, Trace: s.ring.Last(req.N)}

	case OpFault:
		if r := s.repl; r != nil && r.role != roleLeader {
			return s.notLeaderResponse()
		}
		out, err := s.engine.InjectFault(fault.Injection{
			At:     s.engine.Clock(),
			Action: fault.Action(req.Fault.Action),
			Link:   req.Fault.Link,
			Node:   req.Fault.Node,
			Event:  req.Fault.Event,
			Times:  req.Fault.Times,
		})
		if err != nil {
			return Response{OK: false, Error: fmt.Sprintf("%v: %v", ErrBadRequest, err)}
		}
		res := &FaultResult{
			Action:        string(out.Action),
			LinksChanged:  out.LinksChanged,
			FlowsAffected: out.FlowsAffected,
			LinksDown:     out.LinksDown,
		}
		// A minted repair event joins the event table so status/results
		// report its recovery like any submitted event.
		if ev := out.RepairEvent; ev != nil {
			id := int64(ev.ID)
			s.events[id] = ev
			s.order = append(s.order, id)
			res.RepairEventID = id
		}
		if s.wal != nil {
			rec := wal.Record{
				Type:   wal.TypeFault,
				ID:     wal.ID{VT: int64(s.engine.Clock())},
				Rounds: s.engine.Rounds(),
				Fault: &wal.FaultRecord{
					Action:        string(out.Action),
					Link:          req.Fault.Link,
					Node:          req.Fault.Node,
					Event:         req.Fault.Event,
					Times:         req.Fault.Times,
					RepairEventID: res.RepairEventID,
				},
			}
			s.walAppend(&rec)
			// Faults reply directly (not through flush), so commit here:
			// the injection already mutated live state and must survive a
			// crash that follows this ack.
			s.walCommit()
		}
		return Response{OK: true, Fault: res}

	case OpReplStatus:
		if s.repl == nil {
			return Response{OK: false, Error: "ctl: replication requires a WAL"}
		}
		return Response{OK: true, Repl: s.replInfo()}

	case OpReplPromote:
		return s.handlePromote()

	case opCheckpoint:
		if s.wal == nil {
			return Response{OK: false, Error: "ctl: WAL disabled"}
		}
		if err := s.doCheckpoint(); err != nil {
			return Response{OK: false, Error: fmt.Sprintf("ctl: checkpoint: %v", err)}
		}
		return Response{OK: true, EventID: s.walSeq}

	default:
		return Response{OK: false, Error: fmt.Sprintf("%v: unknown op %q", ErrBadRequest, req.Op)}
	}
}

// statusOf renders an event's current status.
func statusOf(id int64, ev *core.Event) EventStatus {
	st := EventStatus{
		EventID: id,
		State:   StateQueued,
		Kind:    ev.Kind,
		Flows:   ev.NumFlows(),
	}
	if ev.Done {
		st.State = StateDone
		st.Admitted = len(ev.Flows)
		st.Failed = len(ev.FailedSpecs)
		st.CostBps = int64(ev.CostAtExec)
		st.QueuingDelay = ev.QueuingDelay()
		st.ECT = ev.ECT()
	}
	return st
}
