package ctl

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"netupdate/internal/core"
	"netupdate/internal/fault"
	"netupdate/internal/flow"
	"netupdate/internal/obs"
	"netupdate/internal/sched"
	"netupdate/internal/sim"
	"netupdate/internal/snapshot"
	"netupdate/internal/topology"
)

// Server owns live network state and schedules submitted update events.
// All state is confined to one goroutine (the state loop); connection
// handlers communicate with it through a command channel, so the sim
// engine and network never see concurrent access.
type Server struct {
	engine    *sim.Engine
	planner   *core.Planner
	scheduler string
	numNodes  int

	// Telemetry: every server carries a ring-buffered tracer (OpTrace
	// reads it in the state loop) and a metrics registry whose values are
	// atomics, safe to scrape over HTTP while the state loop runs.
	registry *obs.Registry
	ring     *obs.RingSink

	cmds    chan command
	closing chan struct{}
	loop    sync.WaitGroup // state loop
	conns   sync.WaitGroup // connection handlers

	mu       sync.Mutex
	listener net.Listener
	open     map[net.Conn]struct{}
	closed   bool
}

// command is one request routed to the state loop.
type command struct {
	req   Request
	reply chan Response
}

// traceRingSize bounds the server's trace ring: enough for a few
// thousand rounds of history without unbounded growth.
const traceRingSize = 4096

// NewServer wraps a planner (owning a prepared network) and a scheduler.
// cfg is the virtual timing model used to compute per-event metrics.
func NewServer(planner *core.Planner, scheduler sched.Scheduler, cfg sim.Config) *Server {
	s := &Server{
		engine:    sim.NewEngine(planner, scheduler, cfg),
		planner:   planner,
		scheduler: scheduler.Name(),
		numNodes:  planner.Network().Graph().NumNodes(),
		registry:  obs.NewRegistry(),
		ring:      obs.NewRingSink(traceRingSize),
		cmds:      make(chan command),
		closing:   make(chan struct{}),
		open:      make(map[net.Conn]struct{}),
	}
	// Attach the tracer before the state loop starts so the engine never
	// sees a concurrent SetTracer.
	s.engine.SetTracer(obs.NewTracer(s.ring, obs.NewSimMetrics(s.registry)))
	s.loop.Add(1)
	go s.stateLoop()
	return s
}

// Registry exposes the server's metric registry, e.g. for mounting
// obs.Handler on an HTTP listener. All registered values are atomics, so
// scraping is safe while the server runs.
func (s *Server) Registry() *obs.Registry { return s.registry }

// Serve accepts connections on l until Close. It returns ErrServerClosed
// after a clean shutdown.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.listener = l
	s.mu.Unlock()

	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.closing:
				return ErrServerClosed
			default:
				return fmt.Errorf("ctl: accept: %w", err)
			}
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			if cerr := conn.Close(); cerr != nil {
				return fmt.Errorf("ctl: closing late conn: %w", cerr)
			}
			return ErrServerClosed
		}
		s.open[conn] = struct{}{}
		s.mu.Unlock()

		s.conns.Add(1)
		go s.handleConn(conn)
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("ctl: listen: %w", err)
	}
	return s.Serve(l)
}

// Close stops accepting, closes open connections, and waits for the state
// loop and all handlers to exit. It is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.closing)
	var firstErr error
	if s.listener != nil {
		firstErr = s.listener.Close()
	}
	for conn := range s.open {
		if err := conn.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.mu.Unlock()

	s.conns.Wait()
	s.loop.Wait()
	return firstErr
}

// handleConn serves one client: a stream of JSON requests, each answered
// by one JSON response.
func (s *Server) handleConn(conn net.Conn) {
	defer s.conns.Done()
	defer func() {
		s.mu.Lock()
		delete(s.open, conn)
		s.mu.Unlock()
		_ = conn.Close() // double-close on shutdown path is harmless
	}()

	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			return // EOF, closed connection, or unframeable garbage: drop
		}
		req, err := ParseRequest(raw)
		if err != nil {
			// Well-framed JSON but a bad request: answer the error and
			// keep the connection.
			if encErr := enc.Encode(Response{OK: false, Error: err.Error()}); encErr != nil {
				return
			}
			continue
		}
		resp := s.dispatch(*req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// dispatch routes a request to the state loop and waits for the answer.
func (s *Server) dispatch(req Request) Response {
	cmd := command{req: req, reply: make(chan Response, 1)}
	select {
	case s.cmds <- cmd:
		return <-cmd.reply
	case <-s.closing:
		return Response{OK: false, Error: ErrServerClosed.Error()}
	}
}

// stateLoop owns the engine, queue and event table. It interleaves command
// processing with scheduling rounds: whenever the queue is non-empty it
// keeps running rounds, checking for new commands between rounds.
func (s *Server) stateLoop() {
	defer s.loop.Done()
	events := make(map[int64]*core.Event)
	var order []int64
	var nextID int64 = 1

	handle := func(cmd command) {
		cmd.reply <- s.handleRequest(cmd.req, events, &order, &nextID)
	}

	for {
		// Block for work when idle; poll between rounds otherwise.
		if s.engine.QueueLen() == 0 {
			select {
			case cmd := <-s.cmds:
				handle(cmd)
			case <-s.closing:
				return
			}
			continue
		}
		select {
		case cmd := <-s.cmds:
			handle(cmd)
		case <-s.closing:
			return
		default:
			if _, err := s.engine.Step(); err != nil {
				// An executing event hit a hard error (invalid spec got
				// through validation, ledger bug): surface it loudly on
				// the next status/stats call rather than dying silently.
				panic(fmt.Sprintf("ctl: scheduling round: %v", err))
			}
		}
	}
}

// handleRequest executes one request against the state (state loop only).
func (s *Server) handleRequest(req Request, events map[int64]*core.Event, order *[]int64, nextID *int64) Response {
	switch req.Op {
	case OpPing:
		return Response{OK: true}

	case OpSubmit:
		if err := req.Event.Validate(s.numNodes); err != nil {
			return Response{OK: false, Error: err.Error()}
		}
		id := *nextID
		*nextID++
		specs := make([]flow.Spec, len(req.Event.Flows))
		for i, f := range req.Event.Flows {
			specs[i] = flow.Spec{
				Src:    topology.NodeID(f.Src),
				Dst:    topology.NodeID(f.Dst),
				Demand: topology.Bandwidth(f.DemandBps),
				Size:   f.SizeBytes,
			}
		}
		kind := req.Event.Kind
		if kind == "" {
			kind = "submitted"
		}
		ev := core.NewEvent(flow.EventID(id), kind, s.engine.Clock(), specs)
		events[id] = ev
		*order = append(*order, id)
		s.engine.Enqueue(ev)
		return Response{OK: true, EventID: id}

	case OpStatus:
		ev, ok := events[req.EventID]
		if !ok {
			return Response{OK: true, Status: &EventStatus{EventID: req.EventID, State: StateUnknown}}
		}
		st := statusOf(req.EventID, ev)
		return Response{OK: true, Status: &st}

	case OpResults:
		var results []EventStatus
		for _, id := range *order {
			if ev := events[id]; ev.Done {
				results = append(results, statusOf(id, ev))
			}
		}
		return Response{OK: true, Results: results}

	case OpSnapshot:
		return Response{OK: true, Snapshot: snapshot.Capture(s.planner.Network())}

	case OpStats:
		col := s.engine.Collector()
		net := s.planner.Network()
		met := s.engine.Tracer().Metrics()
		return Response{OK: true, Stats: &Stats{
			Scheduler:        s.scheduler,
			Utilization:      net.Utilization(),
			FlowsPlaced:      len(net.Registry().Placed()),
			EventsQueued:     s.engine.QueueLen(),
			EventsDone:       col.Len(),
			TotalCostBps:     int64(col.TotalCost()),
			AvgECT:           col.AvgECT(),
			TailECT:          col.TailECT(),
			AvgQueuingDelay:  col.AvgQueuingDelay(),
			PlanTime:         col.PlanTime,
			VirtualClock:     s.engine.Clock(),
			ProbeCacheHits:   met.ProbeHits.Value(),
			ProbeCacheMisses: met.ProbeMisses.Value(),
			ProbeHitRate:     met.ProbeHitRate.Value(),
			Rounds:           met.Rounds.Value(),
			FaultsInjected:   col.FaultsInjected,
			LinksDown:        s.engine.LinksDown(),
			RepairEvents:     col.RepairEvents,
			FlowsDisrupted:   col.FlowsDisrupted,
			InstallRetries:   col.InstallRetries,
			InstallRollbacks: col.InstallRollbacks,
		}}

	case OpTrace:
		return Response{OK: true, Trace: s.ring.Last(req.N)}

	case OpFault:
		out, err := s.engine.InjectFault(fault.Injection{
			At:     s.engine.Clock(),
			Action: fault.Action(req.Fault.Action),
			Link:   req.Fault.Link,
			Node:   req.Fault.Node,
			Event:  req.Fault.Event,
			Times:  req.Fault.Times,
		})
		if err != nil {
			return Response{OK: false, Error: fmt.Sprintf("%v: %v", ErrBadRequest, err)}
		}
		res := &FaultResult{
			Action:        string(out.Action),
			LinksChanged:  out.LinksChanged,
			FlowsAffected: out.FlowsAffected,
			LinksDown:     out.LinksDown,
		}
		// A minted repair event joins the event table so status/results
		// report its recovery like any submitted event.
		if ev := out.RepairEvent; ev != nil {
			id := int64(ev.ID)
			events[id] = ev
			*order = append(*order, id)
			res.RepairEventID = id
		}
		return Response{OK: true, Fault: res}

	default:
		return Response{OK: false, Error: fmt.Sprintf("%v: unknown op %q", ErrBadRequest, req.Op)}
	}
}

// statusOf renders an event's current status.
func statusOf(id int64, ev *core.Event) EventStatus {
	st := EventStatus{
		EventID: id,
		State:   StateQueued,
		Kind:    ev.Kind,
		Flows:   ev.NumFlows(),
	}
	if ev.Done {
		st.State = StateDone
		st.Admitted = len(ev.Flows)
		st.Failed = len(ev.FailedSpecs)
		st.CostBps = int64(ev.CostAtExec)
		st.QueuingDelay = ev.QueuingDelay()
		st.ECT = ev.ECT()
	}
	return st
}
