package ctl

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"netupdate/internal/core"
	"netupdate/internal/migration"
	"netupdate/internal/netstate"
	"netupdate/internal/obs"
	"netupdate/internal/routing"
	"netupdate/internal/sched"
	"netupdate/internal/sim"
	"netupdate/internal/topology"
	"netupdate/internal/trace"
	"netupdate/internal/wal"
)

// The crash-recovery tests exercise the full durability contract: a
// server journals every admission into a WAL directory, the test copies
// that directory at a commit boundary (a valid crash image, since every
// ack follows its group commit), boots a second server from the copy,
// replays the remaining workload against it, and requires the recovered
// run to converge to the uncrashed one — same stats, same results, same
// network snapshot, same trace suffix.

// buildWALWorld constructs the deterministic genesis world shared by
// every recovery test: the k=4 fat-tree of startServer with the same
// seeds. fill is false when a checkpoint will restore the flows.
func buildWALWorld(t *testing.T, fill bool) (*core.Planner, sched.Scheduler, *topology.FatTree) {
	t.Helper()
	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	net1 := netstate.New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.NewRandomFit(7))
	if fill {
		gen, err := trace.NewGenerator(1, trace.YahooLike{}, ft.Hosts())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := trace.FillBackground(net1, gen, 0.3, 0); err != nil {
			t.Fatal(err)
		}
	}
	planner := core.NewPlanner(migration.NewPlanner(net1, 0), core.FailSkip)
	return planner, sched.NewPLMTF(2, 1), ft
}

// startWALServer opens (or reopens) a WAL directory and brings up a
// server journaling into it, recovering first when the directory holds
// history. Teardown mirrors startServer.
func startWALServer(t *testing.T, dir string, ckptEvery int, opts ...wal.Option) (*Server, *Client, *RecoveryInfo, *topology.FatTree) {
	t.Helper()
	log, err := wal.Open(dir, opts...)
	if err != nil {
		t.Fatalf("wal.Open(%s): %v", dir, err)
	}
	planner, scheduler, ft := buildWALWorld(t, log.Checkpoint() == nil)
	srv, rec, err := NewServerWithWAL(planner, scheduler, sim.Config{InstallTime: time.Millisecond},
		WALConfig{Log: log, CheckpointEvery: ckptEvery})
	if err != nil {
		t.Fatalf("NewServerWithWAL: %v", err)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
		if err := <-serveErr; !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	})

	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := client.Close(); err != nil && !strings.Contains(err.Error(), "use of closed") {
			t.Errorf("client close: %v", err)
		}
	})
	return srv, client, rec, ft
}

// walChunk is one lock-step unit of workload: a batch of events waited
// to completion, then optionally a fault injected at the quiesced
// boundary. Because the state loop only rounds while the queue is
// non-empty, the engine state at every chunk boundary is a pure
// function of the chunks played so far.
type walChunk struct {
	specs []EventSpec
	fault *FaultSpec
}

// walWorkload derives a deterministic chunked workload from a seed:
// randomized multi-flow events plus link-down / link-up /
// install-timeout faults pinned to fixed chunk indices.
func walWorkload(ft *topology.FatTree, seed int64, chunks, perChunk int) []walChunk {
	rng := rand.New(rand.NewSource(seed))
	hosts := ft.Hosts()
	nLinks := ft.Graph().NumLinks()
	// One link is failed and later restored; derive it from the seed so
	// different subtests stress different parts of the fabric.
	victim := rng.Intn(nLinks)
	out := make([]walChunk, chunks)
	for c := range out {
		for e := 0; e < perChunk; e++ {
			spec := EventSpec{Kind: "recovery-test"}
			nf := 1 + rng.Intn(3)
			for f := 0; f < nf; f++ {
				src := hosts[rng.Intn(len(hosts))]
				dst := hosts[rng.Intn(len(hosts))]
				for dst == src {
					dst = hosts[rng.Intn(len(hosts))]
				}
				spec.Flows = append(spec.Flows, FlowSpec{
					Src: int(src), Dst: int(dst),
					DemandBps: int64(10+rng.Intn(90)) * 1e6,
				})
			}
			out[c].specs = append(out[c].specs, spec)
		}
		switch c {
		case 1:
			out[c].fault = &FaultSpec{Action: "install-timeout", Times: 1}
		case 2:
			out[c].fault = &FaultSpec{Action: "link-down", Link: victim}
		case 3:
			out[c].fault = &FaultSpec{Action: "link-up", Link: victim}
		}
	}
	return out
}

// playChunk submits one chunk and waits for every admitted event —
// including any repair event a fault mints — so the server is fully
// quiesced (queue empty, everything committed) when it returns.
func playChunk(t *testing.T, client *Client, ch walChunk) {
	t.Helper()
	ids, err := client.SubmitBatchRetry(ch.specs, 5)
	if err != nil {
		t.Fatalf("SubmitBatchRetry: %v", err)
	}
	for _, id := range ids {
		if _, err := client.WaitDone(id, 15*time.Second); err != nil {
			t.Fatalf("WaitDone(%d): %v", id, err)
		}
	}
	if ch.fault != nil {
		res, err := client.Fault(*ch.fault)
		if err != nil {
			t.Fatalf("Fault(%s): %v", ch.fault.Action, err)
		}
		if res.RepairEventID != 0 {
			if _, err := client.WaitDone(res.RepairEventID, 15*time.Second); err != nil {
				t.Fatalf("WaitDone(repair %d): %v", res.RepairEventID, err)
			}
		}
	}
}

// copyDir snapshots a WAL directory into dst, byte for byte. Taken at a
// quiesced chunk boundary this is exactly the on-disk image a kill -9
// would leave behind.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// runDigest is everything about a run that must be identical whether or
// not the server crashed and recovered along the way.
type runDigest struct {
	Stats   Stats
	Results []EventStatus
	Snap    json.RawMessage
	Metrics map[string]any
}

// captureDigest reads the externally visible end state of a server,
// normalizing the few fields that legitimately depend on process
// history rather than admitted inputs: probe-cache warmth (a recovered
// engine probes cold), wire-codec frame counts (the recovered server
// saw only the suffix of client requests), and WAL bookkeeping that
// counts per-process work. WALLastSeq is deliberately kept: replay
// never re-appends, so both runs must agree on the final sequence.
func captureDigest(t *testing.T, srv *Server, client *Client) runDigest {
	t.Helper()
	st, err := client.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	st.ProbeCacheHits, st.ProbeCacheMisses, st.ProbeHitRate = 0, 0, 0
	st.ProbeColdPlans, st.ProbeIncrementalReplans = 0, 0
	st.CodecV2Conns, st.FramesV1, st.FramesV2 = 0, 0, 0
	st.WALAppends, st.WALCheckpoints, st.WALCheckpointSeq = 0, 0, 0
	st.WALReplayed, st.WALRecoveryMs = 0, 0
	// Wall-clock latency is explicitly non-deterministic and process-
	// local: a recovered server re-times only the work it redid.
	st.LatencyE2EP50Ns, st.LatencyE2EP95Ns, st.LatencyE2EP99Ns, st.LatencyE2EP999Ns = 0, 0, 0, 0
	st.LatencyQueueP50Ns, st.LatencyQueueP99Ns = 0, 0
	st.LatencyRoundsP50Ns, st.LatencyRoundsP99Ns = 0, 0
	st.SpansDropped = 0
	st.WALFsyncP50Ns, st.WALFsyncP99Ns, st.WALFsyncCount = 0, 0, 0
	// Replication state is role- and topology-local: a promoted follower
	// legitimately sits at a later term than a never-crashed leader, and
	// stream/ack counters track process history, not admitted inputs.
	st.ReplRole, st.ReplTerm = "", 0
	st.ReplFollowers, st.ReplSynced, st.ReplLagRecords = 0, 0, 0
	st.ReplRecordsSent, st.ReplRecordsApplied, st.ReplFollowerDrops = 0, 0, 0
	st.ReplFailoverMs = 0

	results, err := client.Results()
	if err != nil {
		t.Fatalf("Results: %v", err)
	}
	snap, err := client.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}

	metrics := map[string]any{}
	for k, v := range srv.Registry().Snapshot() {
		switch {
		case strings.HasPrefix(k, "netupdate_wal_"),
			strings.HasPrefix(k, "netupdate_probe_"),
			strings.HasPrefix(k, "netupdate_ingest_codec"),
			strings.HasPrefix(k, "netupdate_ingest_frames"),
			strings.HasPrefix(k, "netupdate_latency_"),
			strings.HasPrefix(k, "netupdate_repl_"),
			strings.HasPrefix(k, "obs_spans_dropped"):
			// Process-local: cache warmth, per-connection codec traffic
			// and wall-clock latency timings do not survive a crash and
			// are not supposed to.
			continue
		}
		metrics[k] = v
	}
	return runDigest{Stats: st, Results: results, Snap: raw, Metrics: metrics}
}

// normTrace strips probe-cache hit flags from round records: a
// recovered engine re-plans what the uncrashed one answered from cache,
// with identical simulated cost (hits report the evals a fresh probe
// would have spent), so CacheHit is the one trace field allowed to
// differ.
func normTrace(recs []obs.Record) []obs.Record {
	for i := range recs {
		if r := recs[i].Round; r != nil {
			for j := range r.Candidates {
				r.Candidates[j].CacheHit = false
			}
			for j := range r.CoScheduled {
				r.CoScheduled[j].Probe.CacheHit = false
			}
		}
	}
	return recs
}

func diffDigest(t *testing.T, want, got runDigest) {
	t.Helper()
	if !reflect.DeepEqual(want.Stats, got.Stats) {
		t.Errorf("stats diverged after recovery:\nbaseline:  %+v\nrecovered: %+v", want.Stats, got.Stats)
	}
	if !reflect.DeepEqual(want.Results, got.Results) {
		t.Errorf("results diverged after recovery: baseline %d events, recovered %d", len(want.Results), len(got.Results))
		for i := range want.Results {
			if i < len(got.Results) && !reflect.DeepEqual(want.Results[i], got.Results[i]) {
				t.Errorf("  result[%d]:\n  baseline:  %+v\n  recovered: %+v", i, want.Results[i], got.Results[i])
			}
		}
	}
	if string(want.Snap) != string(got.Snap) {
		t.Errorf("network snapshot diverged after recovery (%d vs %d bytes)", len(want.Snap), len(got.Snap))
	}
	if !reflect.DeepEqual(want.Metrics, got.Metrics) {
		for k, v := range want.Metrics {
			if gv, ok := got.Metrics[k]; !ok || !reflect.DeepEqual(v, gv) {
				t.Errorf("metric %s diverged: baseline %v, recovered %v", k, v, gv)
			}
		}
		for k := range got.Metrics {
			if _, ok := want.Metrics[k]; !ok {
				t.Errorf("metric %s only present after recovery", k)
			}
		}
	}
}

// TestCrashRecoveryConverges is the end-to-end kill/replay harness: run
// a chunked faulty workload to completion on one server (copying its
// WAL directory at a seed-chosen commit boundary), boot a second server
// from the copy, feed it the remaining chunks, and require convergence
// with the uncrashed run. Each seed runs twice: with checkpoints tight
// enough to force rotation mid-run, and with checkpoints disabled so
// recovery is a pure fold of the log over genesis.
func TestCrashRecoveryConverges(t *testing.T) {
	for _, cfg := range []struct {
		name      string
		ckptEvery int
	}{
		{"checkpointed", 6},
		{"pure-fold", -1},
	} {
		cfg := cfg
		for _, seed := range []int64{1, 2, 3} {
			seed := seed
			t.Run(cfg.name+"/seed-"+string(rune('0'+seed)), func(t *testing.T) {
				t.Parallel()
				const chunks, perChunk = 6, 4
				baseDir := filepath.Join(t.TempDir(), "wal")
				crashDir := filepath.Join(t.TempDir(), "wal-crash")
				crashAt := 1 + int(seed)%(chunks-1) // crash boundary in [1, chunks-1]

				srvA, clientA, recA, ft := startWALServer(t, baseDir, cfg.ckptEvery)
				if recA.Recovered {
					t.Fatal("fresh WAL dir reported a recovery")
				}
				work := walWorkload(ft, seed, chunks, perChunk)
				for i, ch := range work {
					playChunk(t, clientA, ch)
					if i+1 == crashAt {
						// Quiesced boundary: every ack followed its
						// commit, so the directory is a crash image.
						copyDir(t, baseDir, crashDir)
					}
				}
				// Boot from the crash image and replay the rest.
				srvB, clientB, recB, _ := startWALServer(t, crashDir, cfg.ckptEvery)
				if !recB.Recovered {
					t.Fatal("recovery from crash image reported nothing to recover")
				}
				if cfg.ckptEvery < 0 && recB.CheckpointSeq != 0 {
					t.Errorf("pure-fold run recovered from checkpoint seq %d, want 0", recB.CheckpointSeq)
				}
				for _, ch := range work[crashAt:] {
					playChunk(t, clientB, ch)
				}

				a := captureDigest(t, srvA, clientA)
				b := captureDigest(t, srvB, clientB)
				diffDigest(t, a, b)

				// The recovered trace must be a suffix of the baseline
				// trace, modulo probe-cache warmth.
				traceA, err := clientA.Trace(0)
				if err != nil {
					t.Fatalf("Trace: %v", err)
				}
				traceB, err := clientB.Trace(0)
				if err != nil {
					t.Fatalf("Trace: %v", err)
				}
				normTrace(traceA)
				normTrace(traceB)
				if len(traceB) == 0 || len(traceB) > len(traceA) {
					t.Fatalf("recovered trace has %d records, baseline %d", len(traceB), len(traceA))
				}
				tail := traceA[len(traceA)-len(traceB):]
				for i := range traceB {
					wantJSON, _ := json.Marshal(tail[i])
					gotJSON, _ := json.Marshal(traceB[i])
					if string(wantJSON) != string(gotJSON) {
						t.Fatalf("trace record %d/%d diverged:\nbaseline:  %s\nrecovered: %s",
							i, len(traceB), wantJSON, gotJSON)
					}
				}
			})
		}
	}
}

// archivedCheckpoint is one checkpoint archived by wal.WithKeepSegments.
type archivedCheckpoint struct {
	seq  int64
	data []byte
}

// readArchivedCheckpoints collects the checkpoint-<seq>.json archives a
// keep-segments run leaves behind, oldest first.
func readArchivedCheckpoints(t *testing.T, dir string) []archivedCheckpoint {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []archivedCheckpoint
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "checkpoint-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		seq, err := strconv.ParseInt(name[len("checkpoint-"):len(name)-len(".json")], 16, 64)
		if err != nil {
			t.Fatalf("unparsable checkpoint archive %s: %v", name, err)
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, archivedCheckpoint{seq: seq, data: data})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// buildPrefixDir reconstructs the WAL directory exactly as a crash after
// record seq p would have left it: every segment truncated at p's frame
// boundary, and optionally a checkpoint file. hist must have been opened
// with WithKeepSegments so the full segment chain is present.
func buildPrefixDir(t *testing.T, hist *wal.Log, dst string, p int64, ckpt []byte) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, seg := range hist.Segments() {
		if seg.Base >= p {
			continue
		}
		data, err := os.ReadFile(seg.Path)
		if err != nil {
			t.Fatal(err)
		}
		if seg.LastSeq > p {
			// FrameEnds[0] closes the meta frame; FrameEnds[k] closes the
			// record with seq Base+k.
			data = data[:seg.FrameEnds[p-seg.Base]]
		}
		if err := os.WriteFile(filepath.Join(dst, filepath.Base(seg.Path)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if ckpt != nil {
		if err := os.WriteFile(filepath.Join(dst, "checkpoint.json"), ckpt, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRecoveryFoldEquivalenceAtEveryPrefix is the property test behind
// the recovery design: a crash can land after ANY committed record, and
// for every such prefix the recovered state must be the same whether it
// is rebuilt by folding the whole prefix over genesis or by restoring
// the newest covered checkpoint and replaying only the suffix. A
// keep-segments run supplies the full history plus archived checkpoints;
// each subtest reconstructs one crash image from them.
func TestRecoveryFoldEquivalenceAtEveryPrefix(t *testing.T) {
	baseDir := filepath.Join(t.TempDir(), "wal")
	_, clientA, _, ft := startWALServer(t, baseDir, 5, wal.WithKeepSegments())
	for _, ch := range walWorkload(ft, 4, 4, 3) {
		playChunk(t, clientA, ch)
	}
	// Quiesced: every record is committed, nothing in flight. Copy the
	// full history aside so the live server cannot touch it.
	histDir := filepath.Join(t.TempDir(), "hist")
	copyDir(t, baseDir, histDir)

	hist, err := wal.Open(histDir, wal.WithKeepSegments())
	if err != nil {
		t.Fatalf("open history: %v", err)
	}
	lastSeq := hist.LastSeq()
	if lastSeq < 10 {
		t.Fatalf("workload journaled only %d records, too few to be interesting", lastSeq)
	}
	archives := readArchivedCheckpoints(t, histDir)
	if len(archives) == 0 {
		t.Fatal("keep-segments run archived no checkpoints")
	}

	for p := int64(1); p <= lastSeq; p++ {
		p := p
		t.Run(fmt.Sprintf("prefix-%02d", p), func(t *testing.T) {
			t.Parallel()
			foldDir := filepath.Join(t.TempDir(), "fold")
			buildPrefixDir(t, hist, foldDir, p, nil)
			srvF, clientF, recF, _ := startWALServer(t, foldDir, -1)
			if !recF.Recovered {
				t.Fatal("fold recovery reported nothing to recover")
			}
			if recF.LastSeq != p {
				t.Fatalf("fold recovery saw last seq %d, want %d", recF.LastSeq, p)
			}
			if recF.ReplayedRecords != int(p) {
				t.Errorf("fold recovery replayed %d records, want %d", recF.ReplayedRecords, p)
			}
			df := captureDigest(t, srvF, clientF)
			if df.Stats.WALLastSeq != p {
				t.Errorf("fold server at seq %d, want %d", df.Stats.WALLastSeq, p)
			}

			// The newest checkpoint covering this prefix, if any, must
			// recover to the identical state from far less replay.
			var best *archivedCheckpoint
			for i := range archives {
				if archives[i].seq <= p {
					best = &archives[i]
				}
			}
			if best == nil {
				return
			}
			ckptDir := filepath.Join(t.TempDir(), "ckpt")
			buildPrefixDir(t, hist, ckptDir, p, best.data)
			srvC, clientC, recC, _ := startWALServer(t, ckptDir, -1)
			if recC.CheckpointSeq != best.seq {
				t.Errorf("checkpoint recovery started from seq %d, want %d", recC.CheckpointSeq, best.seq)
			}
			if recC.ReplayedRecords != int(p-best.seq) {
				t.Errorf("checkpoint recovery replayed %d records, want %d", recC.ReplayedRecords, p-best.seq)
			}
			dc := captureDigest(t, srvC, clientC)
			diffDigest(t, df, dc)
		})
	}
}

// TestRecoveryRejectsMismatchedWorld proves the meta guard: a log
// written under one scheduler must refuse to fold into a server running
// another, before any record is replayed.
func TestRecoveryRejectsMismatchedWorld(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	_, clientA, _, ft := startWALServer(t, dir, -1)
	playChunk(t, clientA, walWorkload(ft, 9, 1, 2)[0])
	image := filepath.Join(t.TempDir(), "image")
	copyDir(t, dir, image)

	log, err := wal.Open(image)
	if err != nil {
		t.Fatal(err)
	}
	planner, _, _ := buildWALWorld(t, true)
	srv, _, err := NewServerWithWAL(planner, sched.FIFO{}, sim.Config{}, WALConfig{Log: log})
	if err == nil {
		srv.Close()
		t.Fatal("a p-lmtf log recovered into a fifo server")
	}
	if !strings.Contains(err.Error(), "p-lmtf") || !strings.Contains(err.Error(), "fifo") {
		t.Errorf("mismatch error %q does not name both schedulers", err)
	}
}
