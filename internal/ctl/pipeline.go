package ctl

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"netupdate/internal/obs"
)

// ErrInFlight marks a SubmitBatch error where the request had already
// claimed its in-flight slot when the connection failed: the callback
// still receives exactly one BatchResult for it (via the reader's
// drain). An error NOT wrapping ErrInFlight means the batch never left
// the client and no callback will fire for it.
var ErrInFlight = errors.New("ctl: pipeline: connection failed with request in flight")

// BatchResult is one pipelined submit-batch outcome, delivered to the
// Pipeline's callback in submission order.
type BatchResult struct {
	// Verdicts and Overload mirror Client.SubmitBatch's results.
	Verdicts []SubmitVerdict
	Overload *OverloadInfo
	// Latency is the wall time from write to response for this batch.
	// Under pipelining it includes queuing behind earlier in-flight
	// batches, which is exactly the submit latency a client observes.
	Latency time.Duration
	// Err is set when the batch's response never arrived (connection
	// failure); Verdicts is nil then.
	Err error
}

// Pipeline streams submit-batch requests over one binary v2 connection
// without waiting for each response: up to window batches ride the wire
// concurrently, and a reader goroutine matches responses to requests by
// order (the protocol answers every frame, in order). This removes the
// per-request round-trip stall that caps a plain Client's throughput at
// RTT * batch size.
//
// SubmitBatch may be called from many goroutines; writes are serialized
// and block once window batches are in flight (backpressure). Results
// are delivered to the callback from the reader goroutine, one call at
// a time.
type Pipeline struct {
	conn     net.Conn
	onResult func(BatchResult)

	sendMu sync.Mutex
	buf    []byte
	closed bool
	// failErr is the sticky first connection error; once set, further
	// submissions fail immediately.
	failMu  sync.Mutex
	failErr error

	// inflight carries each batch's send time to the reader, bounding
	// the number of unanswered batches at the channel's capacity.
	inflight    chan time.Time
	outstanding sync.WaitGroup
	stop        chan struct{}
	readerDone  chan struct{}

	// spanOn/spanOrigin: when enabled (EnableSpans), every batch carries
	// a span context stamped at send time.
	spanOn     bool
	spanOrigin uint16
}

// DialPipeline connects to a controller at addr and returns a pipeline
// with the given window (<= 0 means 32). onResult receives every
// batch's outcome; it must not be nil.
func DialPipeline(addr string, window int, onResult func(BatchResult)) (*Pipeline, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ctl: dial %s: %w", addr, err)
	}
	return NewPipeline(conn, window, onResult), nil
}

// NewPipeline wraps an established connection. See DialPipeline.
func NewPipeline(conn net.Conn, window int, onResult func(BatchResult)) *Pipeline {
	if window <= 0 {
		window = 32
	}
	p := &Pipeline{
		conn:       conn,
		onResult:   onResult,
		inflight:   make(chan time.Time, window),
		stop:       make(chan struct{}),
		readerDone: make(chan struct{}),
	}
	go p.readLoop()
	return p
}

// EnableSpans attaches a latency span context (origin identity + submit
// wall stamp) to every subsequent batch. The pipeline speaks the binary
// codec, where the context rides behind a flag bit pre-span servers
// reject — callers must first confirm the server advertises
// FeatureSpanContext (Client.Features over a plain connection). Not
// safe to call concurrently with SubmitBatch.
func (p *Pipeline) EnableSpans(origin uint16) {
	p.sendMu.Lock()
	p.spanOn = true
	p.spanOrigin = origin
	p.sendMu.Unlock()
}

// fail records the first connection error.
func (p *Pipeline) fail(err error) {
	p.failMu.Lock()
	if p.failErr == nil {
		p.failErr = err
	}
	p.failMu.Unlock()
}

// failed returns the sticky connection error, nil while healthy.
func (p *Pipeline) failed() error {
	p.failMu.Lock()
	defer p.failMu.Unlock()
	return p.failErr
}

// SubmitBatch queues one submit-batch request on the wire and returns
// once it is written — the outcome arrives at the callback. It blocks
// while window batches are unanswered. retry marks the request as a
// backoff resubmission.
func (p *Pipeline) SubmitBatch(events []EventSpec, retry bool) error {
	p.sendMu.Lock()
	defer p.sendMu.Unlock()
	if p.closed {
		return ErrServerClosed
	}
	if err := p.failed(); err != nil {
		return err
	}
	// Reserve an in-flight slot before writing; the reader releases it
	// when the response (or the connection's death) arrives.
	now := time.Now()
	p.inflight <- now
	p.outstanding.Add(1)
	req := Request{Op: OpSubmitBatch, Events: events, Retry: retry}
	if p.spanOn {
		req.Span = &obs.SpanContext{Origin: p.spanOrigin, SubmitWallNs: now.UnixNano()}
	}
	frame, err := AppendRequestFrame(p.buf[:0], &req)
	if err != nil {
		// Nothing hit the wire: hand the slot back ourselves.
		<-p.inflight
		p.outstanding.Done()
		return err
	}
	p.buf = frame[:0]
	if _, err := p.conn.Write(frame); err != nil {
		// The write may have partially landed; the reader's drain owns
		// the slot and the Done from here on.
		p.fail(err)
		return fmt.Errorf("%w: %v", ErrInFlight, err)
	}
	return nil
}

// readLoop matches response frames to in-flight batches in order.
func (p *Pipeline) readLoop() {
	defer close(p.readerDone)
	br := bufio.NewReaderSize(p.conn, 64<<10)
	var scratch []byte
	for {
		resp, s, err := readResponseFrame(br, scratch)
		scratch = s
		if err != nil {
			p.fail(err)
			break
		}
		start := <-p.inflight
		res := BatchResult{Latency: time.Since(start)}
		if resp.OK {
			res.Verdicts = resp.Verdicts
			res.Overload = resp.Overload
		} else {
			res.Err = fmt.Errorf("ctl: submit-batch: %s", resp.Error)
			res.Overload = resp.Overload
		}
		p.onResult(res)
		p.outstanding.Done()
	}
	// Connection is dead: every batch still in flight (including writes
	// that erred after reserving their slot) gets an error result.
	err := p.failed()
	for {
		select {
		case start := <-p.inflight:
			p.onResult(BatchResult{Err: err, Latency: time.Since(start)})
			p.outstanding.Done()
		case <-p.stop:
			// Close is waiting; nothing can reserve new slots. Drain any
			// last slot that raced in, then exit.
			for {
				select {
				case start := <-p.inflight:
					p.onResult(BatchResult{Err: err, Latency: time.Since(start)})
					p.outstanding.Done()
				default:
					return
				}
			}
		}
	}
}

// Close waits for every in-flight batch to be answered (or failed),
// then closes the connection. No SubmitBatch may be started after
// Close returns ErrServerClosed to it.
func (p *Pipeline) Close() error {
	p.sendMu.Lock()
	if p.closed {
		p.sendMu.Unlock()
		return nil
	}
	p.closed = true
	p.sendMu.Unlock()

	p.outstanding.Wait()
	close(p.stop)
	err := p.conn.Close()
	<-p.readerDone
	return err
}
