package ctl

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"netupdate/internal/obs"
)

// Binary v2 framing. Every frame — request or response — is an 8-byte
// header followed by a length-prefixed payload:
//
//	byte 0   FrameMagic (0xB7; no JSON document can start with it, so
//	         the codec is detected from the first byte of a connection)
//	byte 1   protocol version (ProtocolVersionBinary)
//	byte 2   frame kind: a binOp* value in requests, a respKind* value
//	         in responses
//	byte 3   flags (requests: bit0 = Retry)
//	bytes 4-7  payload length, uint32 little-endian
//
// The hot request path — submit-batch — has a dense native encoding;
// every other operation wraps its JSON v1 body in a binOpJSON /
// respKindJSON frame, so the rare ops cost one length prefix over v1
// while staying trivially in sync with the JSON schema.
const (
	// ProtocolVersionBinary is the wire version of the binary framing.
	// It exists only in binary frames: a JSON request claiming "v":2 is
	// rejected, which keeps old servers' error messages accurate.
	ProtocolVersionBinary = 2

	// FrameMagic is the first byte of every binary frame.
	FrameMagic byte = 0xB7

	// FrameHeaderSize is the fixed header length.
	FrameHeaderSize = 8

	// MaxFramePayload bounds a frame's payload (16 MiB), limiting what a
	// bad length prefix can make the server allocate.
	MaxFramePayload = 1 << 24
)

// Request frame kinds.
const (
	binOpPing        byte = 1
	binOpSubmitBatch byte = 2
	binOpJSON        byte = 3
)

// Response frame kinds.
const (
	respKindJSON     byte = 1
	respKindVerdicts byte = 2
)

// Request flag bits.
const (
	reqFlagRetry byte = 1 << 0
	// reqFlagSpan marks a submit-batch frame whose payload is prefixed
	// with a 10-byte span context (u16 origin + u64 submit wall ns).
	// Pre-span v2 servers reject the unexpected bytes, so clients only
	// set it after the ping response advertised FeatureSpanContext.
	reqFlagSpan byte = 1 << 1
	// reqFlagShard asks the server to stamp each verdict of the response
	// with its owning shard (verdict flag bit verdictFlagShard + u16).
	// Pre-shard servers ignore unknown request flag bits, so a response
	// to a flagged request from an old server simply omits the shard —
	// clients therefore only set it after the ping response advertised
	// FeatureShardVerdicts.
	reqFlagShard byte = 1 << 2
)

// Verdict flag bits of the dense submit-batch response encoding. Bits 0
// and 1 (OK, Overloaded) predate sharding; verdictFlagShard marks a
// verdict followed by a u16 shard ID and is only ever set when the
// request carried reqFlagShard, keeping shard-less frames byte-identical.
const (
	verdictFlagOK         byte = 1 << 0
	verdictFlagOverloaded byte = 1 << 1
	verdictFlagShard      byte = 1 << 2
)

// spanCtxWireSize is the encoded size of the flag-gated span context.
const spanCtxWireSize = 10

// Submit-batch payload caps: far above any sane batch, far below what a
// hostile length field could otherwise demand.
const (
	maxBatchEvents    = 1 << 20
	maxFlowsPerEvent  = 1 << 16
	maxVerdictsDecode = 1 << 20
)

// putHeader writes a frame header in place.
func putHeader(h []byte, kind, flags byte, payloadLen int) {
	h[0] = FrameMagic
	h[1] = ProtocolVersionBinary
	h[2] = kind
	h[3] = flags
	binary.LittleEndian.PutUint32(h[4:8], uint32(payloadLen))
}

// AppendRequestFrame appends req encoded as one binary v2 frame to buf
// and returns the extended slice. Submit-batch requests use the dense
// native encoding; everything else is a JSON envelope frame.
func AppendRequestFrame(buf []byte, req *Request) ([]byte, error) {
	start := len(buf)
	buf = append(buf, make([]byte, FrameHeaderSize)...)
	var kind, flags byte
	if req.Retry {
		flags |= reqFlagRetry
	}
	switch req.Op {
	case OpPing:
		kind = binOpPing
	case OpSubmitBatch:
		kind = binOpSubmitBatch
		if req.ShardInfo {
			flags |= reqFlagShard
		}
		if req.Span != nil {
			flags |= reqFlagSpan
			buf = binary.LittleEndian.AppendUint16(buf, req.Span.Origin)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(req.Span.SubmitWallNs))
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(req.Events)))
		for i := range req.Events {
			ev := &req.Events[i]
			if len(ev.Kind) > 255 {
				return nil, fmt.Errorf("%w: event kind longer than 255 bytes", ErrBadRequest)
			}
			if len(ev.Flows) > maxFlowsPerEvent {
				return nil, fmt.Errorf("%w: event with %d flows", ErrBadRequest, len(ev.Flows))
			}
			buf = append(buf, byte(len(ev.Kind)))
			buf = append(buf, ev.Kind...)
			buf = binary.LittleEndian.AppendUint16(buf, uint16(len(ev.Flows)))
			for _, f := range ev.Flows {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(f.Src))
				buf = binary.LittleEndian.AppendUint32(buf, uint32(f.Dst))
				buf = binary.LittleEndian.AppendUint64(buf, uint64(f.DemandBps))
				buf = binary.LittleEndian.AppendUint64(buf, uint64(f.SizeBytes))
			}
		}
	default:
		kind = binOpJSON
		body, err := json.Marshal(req)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		buf = append(buf, body...)
	}
	payload := len(buf) - start - FrameHeaderSize
	if payload > MaxFramePayload {
		return nil, fmt.Errorf("%w: frame payload %d exceeds %d", ErrBadRequest, payload, MaxFramePayload)
	}
	putHeader(buf[start:start+FrameHeaderSize], kind, flags, payload)
	return buf, nil
}

// parseBinaryRequest decodes one complete binary frame (header included)
// into a Request. All errors wrap ErrBadRequest except a version byte
// this build does not speak, which wraps ErrUnsupportedVersion.
func parseBinaryRequest(data []byte) (*Request, error) {
	if len(data) < FrameHeaderSize {
		return nil, fmt.Errorf("%w: truncated frame header (%d bytes)", ErrBadRequest, len(data))
	}
	if data[0] != FrameMagic {
		return nil, fmt.Errorf("%w: bad frame magic 0x%02x", ErrBadRequest, data[0])
	}
	if data[1] != ProtocolVersionBinary {
		return nil, fmt.Errorf("%w: got binary v%d, this server speaks v%d",
			ErrUnsupportedVersion, data[1], ProtocolVersionBinary)
	}
	kind, flags := data[2], data[3]
	n := binary.LittleEndian.Uint32(data[4:8])
	if n > MaxFramePayload {
		return nil, fmt.Errorf("%w: frame payload %d exceeds %d", ErrBadRequest, n, MaxFramePayload)
	}
	if uint64(len(data)-FrameHeaderSize) != uint64(n) {
		return nil, fmt.Errorf("%w: frame payload length %d, header says %d",
			ErrBadRequest, len(data)-FrameHeaderSize, n)
	}
	payload := data[FrameHeaderSize:]

	req := &Request{
		Version:   ProtocolVersionBinary,
		Retry:     flags&reqFlagRetry != 0,
		ShardInfo: flags&reqFlagShard != 0,
	}
	switch kind {
	case binOpPing:
		req.Op = OpPing
	case binOpSubmitBatch:
		req.Op = OpSubmitBatch
		if flags&reqFlagSpan != 0 {
			if len(payload) < spanCtxWireSize {
				return nil, fmt.Errorf("%w: truncated span context", ErrBadRequest)
			}
			req.Span = &obs.SpanContext{
				Origin:       binary.LittleEndian.Uint16(payload),
				SubmitWallNs: int64(binary.LittleEndian.Uint64(payload[2:])),
			}
			payload = payload[spanCtxWireSize:]
		}
		events, err := decodeBatchPayload(payload)
		if err != nil {
			return nil, err
		}
		req.Events = events
	case binOpJSON:
		inner, err := parseJSONRequest(payload)
		if err != nil {
			return nil, err
		}
		inner.Version = ProtocolVersionBinary
		inner.Retry = inner.Retry || req.Retry
		req = inner
	default:
		return nil, fmt.Errorf("%w: unknown binary frame kind %d", ErrBadRequest, kind)
	}
	if err := checkRequestShape(req); err != nil {
		return nil, err
	}
	return req, nil
}

// decodeBatchPayload decodes the dense submit-batch body. The event
// slice and its flow slices are freshly allocated (they outlive the
// read buffer); string kinds are the only copies beyond that.
func decodeBatchPayload(p []byte) ([]EventSpec, error) {
	off := 0
	need := func(n int) error {
		if len(p)-off < n {
			return fmt.Errorf("%w: truncated submit-batch payload at byte %d", ErrBadRequest, off)
		}
		return nil
	}
	if err := need(4); err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint32(p[off:])
	off += 4
	if count == 0 || count > maxBatchEvents {
		return nil, fmt.Errorf("%w: submit-batch with %d events", ErrBadRequest, count)
	}
	events := make([]EventSpec, 0, count)
	for i := uint32(0); i < count; i++ {
		if err := need(1); err != nil {
			return nil, err
		}
		kindLen := int(p[off])
		off++
		if err := need(kindLen + 2); err != nil {
			return nil, err
		}
		kind := string(p[off : off+kindLen])
		off += kindLen
		flowCount := int(binary.LittleEndian.Uint16(p[off:]))
		off += 2
		if err := need(flowCount * 24); err != nil {
			return nil, err
		}
		flows := make([]FlowSpec, flowCount)
		for j := 0; j < flowCount; j++ {
			flows[j] = FlowSpec{
				Src:       int(binary.LittleEndian.Uint32(p[off:])),
				Dst:       int(binary.LittleEndian.Uint32(p[off+4:])),
				DemandBps: int64(binary.LittleEndian.Uint64(p[off+8:])),
				SizeBytes: int64(binary.LittleEndian.Uint64(p[off+16:])),
			}
			off += 24
		}
		events = append(events, EventSpec{Kind: kind, Flows: flows})
	}
	if off != len(p) {
		return nil, fmt.Errorf("%w: %d trailing bytes after submit-batch payload", ErrBadRequest, len(p)-off)
	}
	return events, nil
}

// AppendResponseFrame appends resp encoded as one binary v2 frame to
// buf. Successful submit-batch responses use the dense verdict
// encoding; everything else is a JSON envelope frame. Verdict shard IDs
// are never encoded — this is the pre-shard wire shape; servers
// answering a shard-flagged request use AppendResponseFrameFor.
func AppendResponseFrame(buf []byte, resp *Response) ([]byte, error) {
	return AppendResponseFrameFor(buf, resp, false)
}

// AppendResponseFrameFor is AppendResponseFrame with explicit control
// over the flag-gated shard extension: with wantShard set (the request
// carried reqFlagShard), each verdict with a non-zero Shard gets the
// verdictFlagShard bit and a trailing u16 shard ID. With it clear the
// frame is byte-identical to a pre-shard build's.
func AppendResponseFrameFor(buf []byte, resp *Response, wantShard bool) ([]byte, error) {
	start := len(buf)
	buf = append(buf, make([]byte, FrameHeaderSize)...)
	var kind byte
	if resp.OK && resp.Verdicts != nil {
		kind = respKindVerdicts
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(resp.Verdicts)))
		for _, v := range resp.Verdicts {
			var f byte
			if v.OK {
				f |= verdictFlagOK
			}
			if v.Overloaded {
				f |= verdictFlagOverloaded
			}
			withShard := wantShard && v.Shard > 0
			if withShard {
				f |= verdictFlagShard
			}
			buf = append(buf, f)
			if withShard {
				buf = binary.LittleEndian.AppendUint16(buf, uint16(v.Shard))
			}
			if v.OK {
				buf = binary.LittleEndian.AppendUint64(buf, uint64(v.EventID))
			} else {
				msg := v.Error
				if len(msg) > 1<<15 {
					msg = msg[:1<<15]
				}
				buf = binary.LittleEndian.AppendUint16(buf, uint16(len(msg)))
				buf = append(buf, msg...)
			}
		}
		if resp.Overload != nil {
			buf = append(buf, 1)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(resp.Overload.QueueDepth))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(resp.Overload.Watermark))
			buf = binary.LittleEndian.AppendUint64(buf, uint64(resp.Overload.RetryAfterMs))
		} else {
			buf = append(buf, 0)
		}
	} else {
		kind = respKindJSON
		body, err := json.Marshal(resp)
		if err != nil {
			return nil, err
		}
		buf = append(buf, body...)
	}
	payload := len(buf) - start - FrameHeaderSize
	if payload > MaxFramePayload {
		return nil, fmt.Errorf("ctl: response frame payload %d exceeds %d", payload, MaxFramePayload)
	}
	putHeader(buf[start:start+FrameHeaderSize], kind, 0, payload)
	return buf, nil
}

// decodeResponseFrame decodes one complete binary response frame.
func decodeResponseFrame(data []byte) (*Response, error) {
	if len(data) < FrameHeaderSize {
		return nil, fmt.Errorf("%w: truncated response header", ErrBadRequest)
	}
	if data[0] != FrameMagic || data[1] != ProtocolVersionBinary {
		return nil, fmt.Errorf("%w: bad response frame preamble", ErrBadRequest)
	}
	kind := data[2]
	n := binary.LittleEndian.Uint32(data[4:8])
	if uint64(len(data)-FrameHeaderSize) != uint64(n) {
		return nil, fmt.Errorf("%w: response payload length mismatch", ErrBadRequest)
	}
	p := data[FrameHeaderSize:]
	switch kind {
	case respKindJSON:
		var resp Response
		if err := json.Unmarshal(p, &resp); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		return &resp, nil
	case respKindVerdicts:
		return decodeVerdictsPayload(p)
	default:
		return nil, fmt.Errorf("%w: unknown response frame kind %d", ErrBadRequest, kind)
	}
}

// decodeVerdictsPayload decodes the dense submit-batch response body.
func decodeVerdictsPayload(p []byte) (*Response, error) {
	off := 0
	need := func(n int) error {
		if len(p)-off < n {
			return fmt.Errorf("%w: truncated verdicts payload at byte %d", ErrBadRequest, off)
		}
		return nil
	}
	if err := need(4); err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint32(p[off:])
	off += 4
	if count > maxVerdictsDecode {
		return nil, fmt.Errorf("%w: %d verdicts", ErrBadRequest, count)
	}
	resp := &Response{OK: true, Verdicts: make([]SubmitVerdict, 0, count)}
	for i := uint32(0); i < count; i++ {
		if err := need(1); err != nil {
			return nil, err
		}
		f := p[off]
		off++
		v := SubmitVerdict{OK: f&verdictFlagOK != 0, Overloaded: f&verdictFlagOverloaded != 0}
		if f&verdictFlagShard != 0 {
			if err := need(2); err != nil {
				return nil, err
			}
			v.Shard = int(binary.LittleEndian.Uint16(p[off:]))
			off += 2
		}
		if v.OK {
			if err := need(8); err != nil {
				return nil, err
			}
			v.EventID = int64(binary.LittleEndian.Uint64(p[off:]))
			off += 8
		} else {
			if err := need(2); err != nil {
				return nil, err
			}
			msgLen := int(binary.LittleEndian.Uint16(p[off:]))
			off += 2
			if err := need(msgLen); err != nil {
				return nil, err
			}
			v.Error = string(p[off : off+msgLen])
			off += msgLen
		}
		resp.Verdicts = append(resp.Verdicts, v)
	}
	if err := need(1); err != nil {
		return nil, err
	}
	present := p[off]
	off++
	if present != 0 {
		if err := need(16); err != nil {
			return nil, err
		}
		resp.Overload = &OverloadInfo{
			QueueDepth:   int(binary.LittleEndian.Uint32(p[off:])),
			Watermark:    int(binary.LittleEndian.Uint32(p[off+4:])),
			RetryAfterMs: int64(binary.LittleEndian.Uint64(p[off+8:])),
		}
		off += 16
	}
	if off != len(p) {
		return nil, fmt.Errorf("%w: %d trailing bytes after verdicts payload", ErrBadRequest, len(p)-off)
	}
	return resp, nil
}
