// Package ctl is the update-controller service: a line-delimited JSON
// protocol over TCP, a server that owns live network state and schedules
// submitted update events with any sched.Scheduler, and a matching client.
//
// The server is the deployment shape of the paper's system: operators,
// applications and monitoring submit update events as they happen; the
// controller queues them, probes costs, and executes them under
// LMTF/P-LMTF semantics, exposing per-event status and the scheduling
// metrics of Section V.
package ctl

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"netupdate/internal/obs"
	"netupdate/internal/snapshot"
)

// Op names a protocol operation.
type Op string

// ProtocolVersion is the current wire protocol version. Requests carry
// it in the "v" field; an absent or zero field means v1, so v1 clients
// need no change. Unknown versions are rejected at parse time with
// ErrUnsupportedVersion.
const ProtocolVersion = 1

// Protocol operations.
const (
	// OpPing checks liveness.
	OpPing Op = "ping"
	// OpSubmit enqueues an update event; the response carries its ID.
	OpSubmit Op = "submit"
	// OpSubmitBatch enqueues many events in one request; the response
	// carries one verdict per event, in submission order.
	OpSubmitBatch Op = "submit-batch"
	// OpStatus reports one event's scheduling state.
	OpStatus Op = "status"
	// OpResults lists all completed events with their metrics.
	OpResults Op = "results"
	// OpStats reports network and scheduler aggregates.
	OpStats Op = "stats"
	// OpSnapshot returns the controller's full network state as a
	// snapshot document (topology, flows, placements).
	OpSnapshot Op = "snapshot"
	// OpTrace returns the most recent scheduling-trace records from the
	// server's ring buffer (arrivals, per-round decisions, event spans).
	OpTrace Op = "trace"
	// OpFault injects a fault (link/switch failure or recovery, install
	// timeout) into the running schedule; the response reports what the
	// injection disrupted.
	OpFault Op = "fault"
	// OpReplStatus reports the server's replication state: role, term,
	// registered followers and their lag (on a follower: its own lag).
	OpReplStatus Op = "repl-status"
	// OpReplPromote promotes a follower: it drains its cascade to
	// quiescence, bumps and persists the term, and flips read-write.
	// Rejected on anything but a follower.
	OpReplPromote Op = "repl-promote"
)

// knownOps is the set of valid protocol operations.
var knownOps = map[Op]bool{
	OpPing: true, OpSubmit: true, OpSubmitBatch: true, OpStatus: true,
	OpResults: true, OpStats: true, OpSnapshot: true, OpTrace: true,
	OpFault: true, OpReplStatus: true, OpReplPromote: true,
}

// FlowSpec is one flow of a submitted event. Host indices refer to the
// server's topology (NodeIDs of hosts).
type FlowSpec struct {
	Src       int   `json:"src"`
	Dst       int   `json:"dst"`
	DemandBps int64 `json:"demand_bps"`
	SizeBytes int64 `json:"size_bytes,omitempty"`
}

// EventSpec is a submitted update event.
type EventSpec struct {
	Kind  string     `json:"kind,omitempty"`
	Flows []FlowSpec `json:"flows"`
}

// FaultSpec is a fault injection requested over the wire. Action is one
// of the internal/fault action names ("link-down", "link-up",
// "switch-down", "switch-up", "install-timeout").
type FaultSpec struct {
	Action string `json:"action"`
	// Link targets link-down/link-up; Node targets switch-down/switch-up.
	Link int `json:"link,omitempty"`
	Node int `json:"node,omitempty"`
	// Event and Times parameterize install-timeout: which event's
	// installs fail (0 = next executed) and how many times.
	Event int64 `json:"event,omitempty"`
	Times int   `json:"times,omitempty"`
}

// FaultResult reports what an injected fault did.
type FaultResult struct {
	Action        string `json:"action"`
	LinksChanged  int    `json:"links_changed"`
	FlowsAffected int    `json:"flows_affected"`
	// RepairEventID is the update event minted to re-admit disrupted
	// flows (0 when nothing was disrupted).
	RepairEventID int64 `json:"repair_event_id,omitempty"`
	// LinksDown is the number of failed links after the injection.
	LinksDown int `json:"links_down"`
}

// Request is one client->server message.
type Request struct {
	// Version is the wire protocol version; absent (0) means v1.
	Version int `json:"v,omitempty"`
	Op      Op  `json:"op"`
	// Event accompanies OpSubmit.
	Event *EventSpec `json:"event,omitempty"`
	// Events accompanies OpSubmitBatch, in submission order.
	Events []EventSpec `json:"events,omitempty"`
	// Retry marks a submit/submit-batch as a backoff resubmission after
	// an overload rejection, so the server can count retried admissions.
	Retry bool `json:"retry,omitempty"`
	// EventID accompanies OpStatus.
	EventID int64 `json:"event_id,omitempty"`
	// N accompanies OpTrace: how many trailing records to return
	// (<= 0 means all retained).
	N int `json:"n,omitempty"`
	// Fault accompanies OpFault.
	Fault *FaultSpec `json:"fault,omitempty"`
	// Span is the optional latency span context of a submit/submit-batch
	// request: the submitter's 16-bit origin identity and its wall clock
	// at submit. Old servers ignore it (unknown JSON field; flag-gated
	// binary prefix) — clients discover support via the "span-ctx"
	// feature in the ping response before attaching it on the binary
	// codec.
	Span *obs.SpanContext `json:"span,omitempty"`
	// ShardInfo asks the server to encode each verdict's owning shard on
	// the binary codec (flag-gated, see reqFlagShard). It never appears
	// on the JSON wire — JSON verdicts are self-describing through the
	// omitempty shard field — so v1 frames stay byte-identical. Clients
	// enable it only after the ping response advertised
	// FeatureShardVerdicts.
	ShardInfo bool `json:"-"`
}

// ParseRequest decodes and shape-checks one request frame, in either
// codec. It is the single entry point for untrusted bytes (the server's
// connection handler and the fuzz target both go through it): malformed
// JSON, broken binary frames, unknown ops and missing per-op payloads
// all return an error wrapping ErrBadRequest; no input may panic.
// Semantic validation against the server's topology (node/link ranges)
// happens later, in the state loop.
//
// The codec is self-describing: a frame starting with FrameMagic (a
// byte no JSON document can start with) is a binary v2 frame; anything
// else is a JSON v1 line. A JSON request claiming "v":2 is rejected —
// v2 exists only in binary framing.
func ParseRequest(data []byte) (*Request, error) {
	if len(data) > 0 && data[0] == FrameMagic {
		return parseBinaryRequest(data)
	}
	return parseJSONRequest(data)
}

// parseJSONRequest decodes one JSON v1 request line.
func parseJSONRequest(data []byte) (*Request, error) {
	var req Request
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if req.Version != 0 && req.Version != ProtocolVersion {
		return nil, fmt.Errorf("%w: got v%d, this server speaks v%d",
			ErrUnsupportedVersion, req.Version, ProtocolVersion)
	}
	if err := checkRequestShape(&req); err != nil {
		return nil, err
	}
	return &req, nil
}

// checkRequestShape applies the codec-independent op and payload checks.
func checkRequestShape(req *Request) error {
	if !knownOps[req.Op] {
		return fmt.Errorf("%w: unknown op %q", ErrBadRequest, req.Op)
	}
	switch req.Op {
	case OpSubmit:
		if req.Event == nil {
			return fmt.Errorf("%w: submit without event", ErrBadRequest)
		}
	case OpSubmitBatch:
		if len(req.Events) == 0 {
			return fmt.Errorf("%w: submit-batch without events", ErrBadRequest)
		}
	case OpFault:
		if req.Fault == nil {
			return fmt.Errorf("%w: fault without spec", ErrBadRequest)
		}
		if req.Fault.Times < 0 || req.Fault.Event < 0 {
			return fmt.Errorf("%w: negative fault parameters", ErrBadRequest)
		}
	}
	return nil
}

// EventState is an event's lifecycle stage.
type EventState string

// Event lifecycle states.
const (
	StateQueued  EventState = "queued"
	StateDone    EventState = "done"
	StateUnknown EventState = "unknown"
)

// EventStatus reports one event's progress and, once done, its metrics.
type EventStatus struct {
	EventID int64      `json:"event_id"`
	State   EventState `json:"state"`
	Kind    string     `json:"kind,omitempty"`
	Flows   int        `json:"flows"`
	// The remaining fields are valid when State == StateDone.
	Admitted     int           `json:"admitted,omitempty"`
	Failed       int           `json:"failed,omitempty"`
	CostBps      int64         `json:"cost_bps,omitempty"`
	QueuingDelay time.Duration `json:"queuing_delay_ns,omitempty"`
	ECT          time.Duration `json:"ect_ns,omitempty"`
}

// Stats reports controller-wide aggregates.
type Stats struct {
	Scheduler       string        `json:"scheduler"`
	Utilization     float64       `json:"utilization"`
	FlowsPlaced     int           `json:"flows_placed"`
	EventsQueued    int           `json:"events_queued"`
	EventsDone      int           `json:"events_done"`
	TotalCostBps    int64         `json:"total_cost_bps"`
	AvgECT          time.Duration `json:"avg_ect_ns"`
	TailECT         time.Duration `json:"tail_ect_ns"`
	AvgQueuingDelay time.Duration `json:"avg_queuing_delay_ns"`
	PlanTime        time.Duration `json:"plan_time_ns"`
	VirtualClock    time.Duration `json:"virtual_clock_ns"`
	// Probe-cache telemetry (Section IV-B probing cost): hits answered
	// from the engine's epoch cache vs full replans, and the hit rate.
	ProbeCacheHits   int64   `json:"probe_cache_hits"`
	ProbeCacheMisses int64   `json:"probe_cache_misses"`
	ProbeHitRate     float64 `json:"probe_hit_rate"`
	// ProbeColdPlans and ProbeIncrementalReplans split the misses: full
	// trial-plans of never-cached events vs. re-plans of cache entries
	// invalidated by link changes (dirty-set maintenance).
	ProbeColdPlans          int64 `json:"probe_cold_plans"`
	ProbeIncrementalReplans int64 `json:"probe_incremental_replans"`
	// Rounds is the number of scheduling rounds executed so far.
	Rounds int64 `json:"rounds"`
	// Fault-injection and recovery telemetry.
	FaultsInjected   int `json:"faults_injected"`
	LinksDown        int `json:"links_down"`
	RepairEvents     int `json:"repair_events"`
	FlowsDisrupted   int `json:"flows_disrupted"`
	InstallRetries   int `json:"install_retries"`
	InstallRollbacks int `json:"install_rollbacks"`
	// Ingest telemetry: the intake bound and the cumulative submission
	// outcomes (events accepted, events rejected for overload, events
	// accepted from marked backoff retries, requests that admitted at
	// least one event).
	IngestWatermark int   `json:"ingest_watermark"`
	IngestAccepted  int64 `json:"ingest_accepted"`
	IngestRejected  int64 `json:"ingest_rejected"`
	IngestRetried   int64 `json:"ingest_retried"`
	IngestBatches   int64 `json:"ingest_batches"`
	// Codec telemetry: requests decoded per wire codec and connections
	// currently speaking the binary v2 framing.
	CodecV2Conns int64 `json:"codec_v2_conns"`
	FramesV1     int64 `json:"frames_v1"`
	FramesV2     int64 `json:"frames_v2"`
	// WAL / recovery telemetry (all zero when the daemon runs without a
	// write-ahead log).
	WALEnabled       bool  `json:"wal_enabled,omitempty"`
	WALLastSeq       int64 `json:"wal_last_seq,omitempty"`
	WALCheckpointSeq int64 `json:"wal_checkpoint_seq,omitempty"`
	WALAppends       int64 `json:"wal_appends,omitempty"`
	WALCheckpoints   int64 `json:"wal_checkpoints,omitempty"`
	WALReplayed      int64 `json:"wal_replayed,omitempty"`
	WALRecoveryMs    int64 `json:"wal_recovery_ms,omitempty"`
	// Latency pipeline percentiles (wall-clock nanoseconds, explicitly
	// non-deterministic): end-to-end submit→completion, plus the
	// overload breakdown of where the time went (time-in-queue =
	// admission→exec start, time-in-rounds = exec start→completion).
	// Zero until at least one event completed since boot.
	LatencyE2EP50Ns    int64 `json:"latency_e2e_p50_ns,omitempty"`
	LatencyE2EP95Ns    int64 `json:"latency_e2e_p95_ns,omitempty"`
	LatencyE2EP99Ns    int64 `json:"latency_e2e_p99_ns,omitempty"`
	LatencyE2EP999Ns   int64 `json:"latency_e2e_p999_ns,omitempty"`
	LatencyQueueP50Ns  int64 `json:"latency_queue_p50_ns,omitempty"`
	LatencyQueueP99Ns  int64 `json:"latency_queue_p99_ns,omitempty"`
	LatencyRoundsP50Ns int64 `json:"latency_rounds_p50_ns,omitempty"`
	LatencyRoundsP99Ns int64 `json:"latency_rounds_p99_ns,omitempty"`
	// SpansDropped counts span records the bounded span sink rejected
	// instead of backpressuring the state loop.
	SpansDropped int64 `json:"spans_dropped,omitempty"`
	// WAL fsync latency (per group commit under the group policy, per
	// append under always; absent under off or without a WAL).
	WALSyncPolicy string `json:"wal_sync_policy,omitempty"`
	WALFsyncP50Ns int64  `json:"wal_fsync_p50_ns,omitempty"`
	WALFsyncP99Ns int64  `json:"wal_fsync_p99_ns,omitempty"`
	WALFsyncCount int64  `json:"wal_fsync_count,omitempty"`
	// Replication telemetry (all empty/zero when the daemon runs without
	// a WAL): role and term, follower registration and worst acked-seq
	// lag on a leader, records streamed/folded, and the last promotion's
	// drain-to-serving time on a promoted follower.
	ReplRole           string `json:"repl_role,omitempty"`
	ReplTerm           uint64 `json:"repl_term,omitempty"`
	ReplFollowers      int    `json:"repl_followers,omitempty"`
	ReplSynced         int    `json:"repl_synced,omitempty"`
	ReplLagRecords     int64  `json:"repl_lag_records,omitempty"`
	ReplRecordsSent    int64  `json:"repl_records_sent,omitempty"`
	ReplRecordsApplied int64  `json:"repl_records_applied,omitempty"`
	ReplFollowerDrops  int64  `json:"repl_follower_drops,omitempty"`
	ReplFailoverMs     int64  `json:"repl_failover_ms,omitempty"`
	// Sharding telemetry (all zero outside a sharded deployment). On a
	// per-shard engine, ShardID is its 1-based identity and Shards the
	// fleet size; on a gateway, ShardID is 0 and Shards the number of
	// backends the stats were aggregated across. The cross counters are
	// gateway-side: events that spanned multiple shards, and those
	// rejected because the reserved cross-shard core pool ran dry.
	ShardID       int   `json:"shard_id,omitempty"`
	Shards        int   `json:"shards,omitempty"`
	CrossEvents   int64 `json:"cross_events,omitempty"`
	CrossRejected int64 `json:"cross_rejected,omitempty"`
}

// SubmitVerdict is one event's outcome within an OpSubmitBatch
// response, in submission order.
type SubmitVerdict struct {
	OK bool `json:"ok"`
	// EventID is the assigned ID when OK.
	EventID int64 `json:"event_id,omitempty"`
	// Error explains a rejection (validation failure, overload).
	Error string `json:"error,omitempty"`
	// Overloaded marks a rejection caused purely by backpressure: the
	// event was well-formed and can be resubmitted after the hint.
	Overloaded bool `json:"overloaded,omitempty"`
	// Shard is the 1-based shard that admitted (or rejected) the event in
	// a sharded deployment; zero on a single-shard server, so pre-shard
	// responses are byte-identical (omitempty here, flag-gated on the
	// binary codec).
	Shard int `json:"shard,omitempty"`
}

// OverloadInfo is the backpressure detail attached to any response that
// rejected events for overload: how deep the queue was and when a retry
// is worth attempting.
type OverloadInfo struct {
	// QueueDepth is the update-queue length at rejection time.
	QueueDepth int `json:"queue_depth"`
	// Watermark is the intake bound the depth ran into.
	Watermark int `json:"watermark"`
	// RetryAfterMs is the server's hint for the earliest sensible
	// resubmission, in milliseconds.
	RetryAfterMs int64 `json:"retry_after_ms"`
}

// RetryAfter returns the hint as a duration.
func (o *OverloadInfo) RetryAfter() time.Duration {
	return time.Duration(o.RetryAfterMs) * time.Millisecond
}

// Response is one server->client message.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// EventID echoes the assigned ID after OpSubmit.
	EventID int64 `json:"event_id,omitempty"`
	// Verdicts answers OpSubmitBatch (one per submitted event, in order).
	Verdicts []SubmitVerdict `json:"verdicts,omitempty"`
	// Overload carries backpressure details when any event of the
	// request was rejected for overload.
	Overload *OverloadInfo `json:"overload,omitempty"`
	// Status answers OpStatus.
	Status *EventStatus `json:"status,omitempty"`
	// Results answers OpResults (completed events, completion order).
	Results []EventStatus `json:"results,omitempty"`
	// Stats answers OpStats.
	Stats *Stats `json:"stats,omitempty"`
	// Snapshot answers OpSnapshot.
	Snapshot *snapshot.Snapshot `json:"snapshot,omitempty"`
	// Trace answers OpTrace (oldest record first).
	Trace []obs.Record `json:"trace,omitempty"`
	// Fault answers OpFault.
	Fault *FaultResult `json:"fault,omitempty"`
	// Features answers OpPing: optional protocol capabilities this
	// server speaks (e.g. FeatureSpanContext). Old servers simply omit
	// it, which is how clients downgrade.
	Features []string `json:"features,omitempty"`
	// Repl answers OpReplStatus and OpReplPromote.
	Repl *ReplInfo `json:"repl,omitempty"`
	// NotLeader carries the typed rejection detail when a submit, fault
	// or promote landed on a server that cannot serve writes (follower
	// or deposed leader).
	NotLeader *NotLeaderInfo `json:"not_leader,omitempty"`

	// repl answers internal replication commands (never serialized; nil
	// on every wire response).
	repl *replReply
}

// ReplInfo answers OpReplStatus: the server's replication role and
// term, plus role-specific detail — registered followers on a leader,
// own lag and leader address on a follower, and the last promotion's
// drain-to-serving time.
type ReplInfo struct {
	Role string `json:"role"`
	Term uint64 `json:"term"`
	// LastSeq is the server's own WAL sequence.
	LastSeq int64 `json:"last_seq"`
	// LeaderAddr and LagRecords describe a follower's session: the
	// leader it streams from and how far behind its fold is.
	LeaderAddr string `json:"leader_addr,omitempty"`
	LagRecords int64  `json:"lag_records,omitempty"`
	// LastError surfaces a follower's terminal session error (stale
	// leader, behind checkpoint) that stopped its reconnect loop.
	LastError string `json:"last_error,omitempty"`
	// Followers lists a leader's registered replication sessions.
	Followers []FollowerInfo `json:"followers,omitempty"`
	// FailoverMs is the last promotion's drain-to-serving time (0 if
	// this server was never promoted).
	FailoverMs int64 `json:"failover_ms,omitempty"`
}

// FollowerInfo is one registered replication session on a leader.
type FollowerInfo struct {
	Addr string `json:"addr"`
	// AckedSeq is the follower's last durability acknowledgement;
	// LagRecords the leader's log end minus it.
	AckedSeq   int64 `json:"acked_seq"`
	LagRecords int64 `json:"lag_records"`
	// Synced marks a follower that caught up past its registration
	// point and now gates group commits.
	Synced bool `json:"synced"`
}

// NotLeaderInfo is the wire detail of a write rejected for role.
type NotLeaderInfo struct {
	Role string `json:"role"`
	Term uint64 `json:"term"`
	// LeaderAddr is the leader this follower streams from, when known —
	// the client's redirect hint.
	LeaderAddr string `json:"leader_addr,omitempty"`
}

// FeatureSpanContext advertises (in the ping response) that the server
// decodes the span-context field on submit requests — including the
// flag-gated binary prefix, which pre-span v2 peers would reject.
const FeatureSpanContext = "span-ctx"

// FeatureShardVerdicts advertises (in the ping response) that the
// server understands the shard-info request flag and will stamp each
// submit-batch verdict with its owning shard on the binary codec.
// Without the flag (or on JSON, where the field is omitempty) frames
// stay byte-identical to pre-shard builds.
const FeatureShardVerdicts = "shard-verdicts"

// Protocol-level errors.
var (
	// ErrBadRequest is returned for malformed or unsupported requests.
	ErrBadRequest = errors.New("ctl: bad request")
	// ErrUnsupportedVersion is returned by ParseRequest for requests
	// carrying a protocol version this server does not speak.
	ErrUnsupportedVersion = errors.New("ctl: unsupported protocol version")
	// ErrServerClosed is returned by client calls after the server went
	// away and by Serve after Close.
	ErrServerClosed = errors.New("ctl: server closed")
	// ErrOverloaded marks submissions rejected by backpressure: the
	// update queue is past its high-watermark. Match with errors.Is; the
	// concrete error is an *OverloadError carrying the queue depth and
	// the server's retry-after hint.
	ErrOverloaded = errors.New("ctl: overloaded")
)

// OverloadError is the typed client-side form of an overload rejection.
// errors.Is(err, ErrOverloaded) reports true for it.
type OverloadError struct {
	// QueueDepth and Watermark describe the queue at rejection time.
	QueueDepth int
	Watermark  int
	// RetryAfter is the server's resubmission hint.
	RetryAfter time.Duration
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("ctl: overloaded: queue depth %d past watermark %d, retry after %v",
		e.QueueDepth, e.Watermark, e.RetryAfter)
}

// Is makes errors.Is(err, ErrOverloaded) match.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// ErrNotLeader marks writes (submit, fault, promote) rejected because
// the server is a replication follower or a deposed leader. Match with
// errors.Is; the concrete error is a *NotLeaderError carrying the role,
// term and redirect hint.
var ErrNotLeader = errors.New("ctl: not the leader")

// NotLeaderError is the typed client-side form of a role rejection.
type NotLeaderError struct {
	// Role is the rejecting server's replication role ("follower" or
	// "deposed").
	Role string
	Term uint64
	// LeaderAddr is the leader the rejecting follower streams from,
	// when known.
	LeaderAddr string
}

// Error implements error.
func (e *NotLeaderError) Error() string {
	if e.LeaderAddr != "" {
		return fmt.Sprintf("ctl: not the leader (%s, term %d); leader at %s", e.Role, e.Term, e.LeaderAddr)
	}
	return fmt.Sprintf("ctl: not the leader (%s, term %d)", e.Role, e.Term)
}

// Is makes errors.Is(err, ErrNotLeader) match.
func (e *NotLeaderError) Is(target error) bool { return target == ErrNotLeader }

// Validate checks a submitted event.
func (e *EventSpec) Validate(numNodes int) error {
	if e == nil {
		return fmt.Errorf("%w: missing event", ErrBadRequest)
	}
	if len(e.Flows) == 0 {
		return fmt.Errorf("%w: event has no flows", ErrBadRequest)
	}
	for i, f := range e.Flows {
		if f.Src < 0 || f.Src >= numNodes || f.Dst < 0 || f.Dst >= numNodes {
			return fmt.Errorf("%w: flow %d endpoints out of range", ErrBadRequest, i)
		}
		if f.Src == f.Dst {
			return fmt.Errorf("%w: flow %d src == dst", ErrBadRequest, i)
		}
		if f.DemandBps <= 0 {
			return fmt.Errorf("%w: flow %d non-positive demand", ErrBadRequest, i)
		}
		if f.SizeBytes < 0 {
			return fmt.Errorf("%w: flow %d negative size", ErrBadRequest, i)
		}
	}
	return nil
}
