// Package ctl is the update-controller service: a line-delimited JSON
// protocol over TCP, a server that owns live network state and schedules
// submitted update events with any sched.Scheduler, and a matching client.
//
// The server is the deployment shape of the paper's system: operators,
// applications and monitoring submit update events as they happen; the
// controller queues them, probes costs, and executes them under
// LMTF/P-LMTF semantics, exposing per-event status and the scheduling
// metrics of Section V.
package ctl

import (
	"errors"
	"fmt"
	"time"

	"netupdate/internal/obs"
	"netupdate/internal/snapshot"
)

// Op names a protocol operation.
type Op string

// Protocol operations.
const (
	// OpPing checks liveness.
	OpPing Op = "ping"
	// OpSubmit enqueues an update event; the response carries its ID.
	OpSubmit Op = "submit"
	// OpStatus reports one event's scheduling state.
	OpStatus Op = "status"
	// OpResults lists all completed events with their metrics.
	OpResults Op = "results"
	// OpStats reports network and scheduler aggregates.
	OpStats Op = "stats"
	// OpSnapshot returns the controller's full network state as a
	// snapshot document (topology, flows, placements).
	OpSnapshot Op = "snapshot"
	// OpTrace returns the most recent scheduling-trace records from the
	// server's ring buffer (arrivals, per-round decisions, event spans).
	OpTrace Op = "trace"
)

// FlowSpec is one flow of a submitted event. Host indices refer to the
// server's topology (NodeIDs of hosts).
type FlowSpec struct {
	Src       int   `json:"src"`
	Dst       int   `json:"dst"`
	DemandBps int64 `json:"demand_bps"`
	SizeBytes int64 `json:"size_bytes,omitempty"`
}

// EventSpec is a submitted update event.
type EventSpec struct {
	Kind  string     `json:"kind,omitempty"`
	Flows []FlowSpec `json:"flows"`
}

// Request is one client->server message.
type Request struct {
	Op Op `json:"op"`
	// Event accompanies OpSubmit.
	Event *EventSpec `json:"event,omitempty"`
	// EventID accompanies OpStatus.
	EventID int64 `json:"event_id,omitempty"`
	// N accompanies OpTrace: how many trailing records to return
	// (<= 0 means all retained).
	N int `json:"n,omitempty"`
}

// EventState is an event's lifecycle stage.
type EventState string

// Event lifecycle states.
const (
	StateQueued  EventState = "queued"
	StateDone    EventState = "done"
	StateUnknown EventState = "unknown"
)

// EventStatus reports one event's progress and, once done, its metrics.
type EventStatus struct {
	EventID int64      `json:"event_id"`
	State   EventState `json:"state"`
	Kind    string     `json:"kind,omitempty"`
	Flows   int        `json:"flows"`
	// The remaining fields are valid when State == StateDone.
	Admitted     int           `json:"admitted,omitempty"`
	Failed       int           `json:"failed,omitempty"`
	CostBps      int64         `json:"cost_bps,omitempty"`
	QueuingDelay time.Duration `json:"queuing_delay_ns,omitempty"`
	ECT          time.Duration `json:"ect_ns,omitempty"`
}

// Stats reports controller-wide aggregates.
type Stats struct {
	Scheduler       string        `json:"scheduler"`
	Utilization     float64       `json:"utilization"`
	FlowsPlaced     int           `json:"flows_placed"`
	EventsQueued    int           `json:"events_queued"`
	EventsDone      int           `json:"events_done"`
	TotalCostBps    int64         `json:"total_cost_bps"`
	AvgECT          time.Duration `json:"avg_ect_ns"`
	TailECT         time.Duration `json:"tail_ect_ns"`
	AvgQueuingDelay time.Duration `json:"avg_queuing_delay_ns"`
	PlanTime        time.Duration `json:"plan_time_ns"`
	VirtualClock    time.Duration `json:"virtual_clock_ns"`
	// Probe-cache telemetry (Section IV-B probing cost): hits answered
	// from the engine's epoch cache vs full replans, and the hit rate.
	ProbeCacheHits   int64   `json:"probe_cache_hits"`
	ProbeCacheMisses int64   `json:"probe_cache_misses"`
	ProbeHitRate     float64 `json:"probe_hit_rate"`
	// Rounds is the number of scheduling rounds executed so far.
	Rounds int64 `json:"rounds"`
}

// Response is one server->client message.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// EventID echoes the assigned ID after OpSubmit.
	EventID int64 `json:"event_id,omitempty"`
	// Status answers OpStatus.
	Status *EventStatus `json:"status,omitempty"`
	// Results answers OpResults (completed events, completion order).
	Results []EventStatus `json:"results,omitempty"`
	// Stats answers OpStats.
	Stats *Stats `json:"stats,omitempty"`
	// Snapshot answers OpSnapshot.
	Snapshot *snapshot.Snapshot `json:"snapshot,omitempty"`
	// Trace answers OpTrace (oldest record first).
	Trace []obs.Record `json:"trace,omitempty"`
}

// Protocol-level errors.
var (
	// ErrBadRequest is returned for malformed or unsupported requests.
	ErrBadRequest = errors.New("ctl: bad request")
	// ErrServerClosed is returned by client calls after the server went
	// away and by Serve after Close.
	ErrServerClosed = errors.New("ctl: server closed")
)

// Validate checks a submitted event.
func (e *EventSpec) Validate(numNodes int) error {
	if e == nil {
		return fmt.Errorf("%w: missing event", ErrBadRequest)
	}
	if len(e.Flows) == 0 {
		return fmt.Errorf("%w: event has no flows", ErrBadRequest)
	}
	for i, f := range e.Flows {
		if f.Src < 0 || f.Src >= numNodes || f.Dst < 0 || f.Dst >= numNodes {
			return fmt.Errorf("%w: flow %d endpoints out of range", ErrBadRequest, i)
		}
		if f.Src == f.Dst {
			return fmt.Errorf("%w: flow %d src == dst", ErrBadRequest, i)
		}
		if f.DemandBps <= 0 {
			return fmt.Errorf("%w: flow %d non-positive demand", ErrBadRequest, i)
		}
		if f.SizeBytes < 0 {
			return fmt.Errorf("%w: flow %d negative size", ErrBadRequest, i)
		}
	}
	return nil
}
