package ctl

// Durable write-ahead logging and crash recovery for the controller.
//
// The recovery model is a fold: the engine's externally-visible state is
// a pure function of the ordered admitted-input history (submitted
// events, fault injections) because the virtual clock only advances
// inside scheduling rounds and every random draw comes from a counted,
// seeded source. The WAL records that history — each record stamped
// with the logical clock (virtual time, sequence) and the round count
// at admission — and a checkpoint freezes the folded state so the log
// can be truncated. Recovery is: thaw the checkpoint, then re-admit the
// log suffix, stepping the engine to each record's round stamp and
// asserting the virtual clock matches the stamp. Any mismatch is a
// divergence (ErrReplayDiverged): the binary, seed or world differs
// from the one that wrote the log, and continuing would fabricate
// history.

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"netupdate/internal/core"
	"netupdate/internal/fault"
	"netupdate/internal/flow"
	"netupdate/internal/metrics"
	"netupdate/internal/obs"
	"netupdate/internal/repl"
	"netupdate/internal/sched"
	"netupdate/internal/sim"
	"netupdate/internal/snapshot"
	"netupdate/internal/topology"
	"netupdate/internal/wal"
)

// opCheckpoint is the internal checkpoint operation. It is deliberately
// absent from knownOps: ParseRequest rejects it, so wire clients cannot
// trigger checkpoints; only ForceCheckpoint (and the automatic cadence)
// reaches it, always through the state loop.
const opCheckpoint Op = "wal-checkpoint"

// DefaultCheckpointEvery is the automatic checkpoint cadence: a
// checkpoint is taken after this many WAL records have been appended
// since the last one.
const DefaultCheckpointEvery = 4096

// ErrReplayDiverged reports that replaying the WAL reproduced different
// state than the log records — the binary, seed, topology or scheduler
// differs from the run that wrote the log. Match with errors.Is.
var ErrReplayDiverged = errors.New("ctl: wal replay diverged")

// WALConfig wires a server to an opened write-ahead log.
type WALConfig struct {
	// Log is the opened log directory (wal.Open). Callers open it
	// themselves so they can inspect Checkpoint() before deciding how to
	// build the world: a log with a checkpoint restores its own flows,
	// so background pre-fill must be skipped; a checkpoint-free log
	// replays against the freshly built (filled) genesis network.
	Log *wal.Log
	// Meta describes the world the log belongs to; it is verified
	// against the log's recorded meta so a log is never replayed into a
	// different world. Nil derives a minimal meta from the server.
	Meta *wal.Meta
	// CheckpointEvery is the automatic checkpoint cadence in appended
	// records; 0 means DefaultCheckpointEvery, negative disables
	// automatic checkpoints (ForceCheckpoint still works).
	CheckpointEvery int

	// followerBoot marks a NewFollower recovery: the boot state must be
	// the exact fold at the last applied record, not the quiesced
	// drain, because the leader's subsequent record stamps continue
	// from that fold.
	followerBoot bool
}

// RecoveryInfo reports what NewServerWithWAL rebuilt.
type RecoveryInfo struct {
	// Recovered is true when any state was restored (checkpoint or
	// replayed records).
	Recovered bool
	// CheckpointSeq is the sequence covered by the restored checkpoint
	// (0 when none existed).
	CheckpointSeq int64
	// ReplayedRecords is the number of log records re-admitted.
	ReplayedRecords int
	// LastSeq is the log's last sequence after recovery.
	LastSeq int64
	// Elapsed is the wall-clock time recovery took.
	Elapsed time.Duration
}

// rngCarrier is implemented by schedulers and route selectors whose
// randomness comes from a counted deterministic source.
type rngCarrier interface {
	RNGDraws() int64
	RestoreRNG(int64)
}

// queuedEvent is one not-yet-executed event in the checkpoint, carrying
// the full specs it still needs to execute with.
type queuedEvent struct {
	ID        int64          `json:"id"`
	Kind      string         `json:"kind"`
	ArrivalNs int64          `json:"arrival_ns"`
	Flows     []wal.FlowSpec `json:"flows"`
}

// rngState carries the counted-draw positions of the deterministic
// random sources, so a restored run continues the same stream.
type rngState struct {
	Scheduler int64 `json:"scheduler,omitempty"`
	Selector  int64 `json:"selector,omitempty"`
}

// ingestState carries the ingest counters across a restart.
type ingestState struct {
	Accepted  int64              `json:"accepted"`
	Rejected  int64              `json:"rejected"`
	Retried   int64              `json:"retried"`
	Batches   int64              `json:"batches"`
	BatchSize obs.HistogramState `json:"batch_size"`
}

// simMetricState carries the engine's observation-stream metrics (the
// counters and histograms the tracer accumulates round by round; the
// gauges are recomputed from restored state instead).
type simMetricState struct {
	Rounds        int64 `json:"rounds"`
	EventsDone    int64 `json:"events_done"`
	FlowsAdmitted int64 `json:"flows_admitted"`
	FlowsFailed   int64 `json:"flows_failed"`

	FaultsInjected   int64 `json:"faults_injected"`
	RepairEvents     int64 `json:"repair_events"`
	FlowsDisrupted   int64 `json:"flows_disrupted"`
	InstallRetries   int64 `json:"install_retries"`
	InstallRollbacks int64 `json:"install_rollbacks"`

	ECT             obs.HistogramState `json:"ect"`
	QueuingDelay    obs.HistogramState `json:"queuing_delay"`
	ProbeDirtyLinks obs.HistogramState `json:"probe_dirty_links"`
}

// checkpointDoc is the state document a checkpoint freezes: everything
// needed to rebuild a server whose externally-visible behavior is
// indistinguishable from one that never restarted.
type checkpointDoc struct {
	NextID int64   `json:"next_id"`
	Order  []int64 `json:"order"`

	Queue []queuedEvent         `json:"queue,omitempty"`
	Done  []metrics.EventRecord `json:"done,omitempty"`

	// Collector scalars not covered by Engine.Probe or Done.
	DecisionEvals    int   `json:"decision_evals"`
	PlanTimeNs       int64 `json:"plan_time_ns"`
	MakespanNs       int64 `json:"makespan_ns"`
	FaultsInjected   int   `json:"faults_injected"`
	RepairEvents     int   `json:"repair_events"`
	FlowsDisrupted   int   `json:"flows_disrupted"`
	InstallRetries   int   `json:"install_retries"`
	InstallRollbacks int   `json:"install_rollbacks"`

	Engine  sim.EngineState    `json:"engine"`
	Network *snapshot.Snapshot `json:"network"`
	Ingest  ingestState        `json:"ingest"`
	Sim     simMetricState     `json:"sim"`
	RNG     rngState           `json:"rng"`
}

// NewServerWithWAL builds a server attached to a write-ahead log,
// recovering any recorded history before the state loop starts: the
// checkpoint (if any) is thawed into the planner's network and engine,
// the log suffix is replayed through the same admission path live
// requests take, and only then does the server begin serving.
//
// When cfg.Log holds no checkpoint, the planner's network must be in
// the same genesis state the original run started from (same topology,
// same background fill) — the replay folds the full log against it.
//
// Deprecated: use New with Config.WAL set; this remains as a thin
// wrapper for existing callers.
func NewServerWithWAL(planner *core.Planner, scheduler sched.Scheduler, simCfg sim.Config, cfg WALConfig, opts ...ServerOption) (*Server, *RecoveryInfo, error) {
	s := newServer(planner, scheduler, simCfg, opts...)
	info, err := s.initWAL(cfg)
	if err != nil {
		return nil, nil, err
	}
	s.start()
	return s, info, nil
}

// initWAL attaches an opened log to a not-yet-started server and
// recovers its history; shared by NewServerWithWAL and NewFollower. On
// success the server carries a replication hub (leader role by
// default; NewFollower flips it before start).
func (s *Server) initWAL(cfg WALConfig) (*RecoveryInfo, error) {
	if cfg.Log == nil {
		return nil, fmt.Errorf("ctl: WALConfig.Log is nil")
	}
	s.walLog = cfg.Log
	s.walMet = obs.NewWALMetrics(s.registry)
	s.ckptEvery = cfg.CheckpointEvery
	if s.ckptEvery == 0 {
		s.ckptEvery = DefaultCheckpointEvery
	}
	m := wal.Meta{Format: wal.FormatVersion, Scheduler: s.scheduler, Watermark: s.watermark}
	if cfg.Meta != nil {
		m = *cfg.Meta
	}
	if s.shardID > 0 && m.Shard == 0 {
		// A sharded engine stamps its placement into the log so recovery
		// onto the wrong shard slot (different ID lattice) is refused by
		// the meta check instead of diverging on replay.
		m.Shard = s.shardID
		m.Shards = int(s.idStride)
	}
	meta := &m
	s.walMeta = m
	// Reject a mismatched world before replaying anything into it: a log
	// written under a different scheduler/seed/topology would not merely
	// fail to converge, it would corrupt the recovery with plausible
	// wrong state.
	if lm := cfg.Log.Meta(); lm != nil {
		if err := lm.Check(meta); err != nil {
			return nil, err
		}
	}

	started := time.Now()
	info := &RecoveryInfo{}
	afterSeq := int64(0)
	if ckpt := cfg.Log.Checkpoint(); ckpt != nil {
		if err := s.restoreCheckpoint(ckpt); err != nil {
			return nil, err
		}
		afterSeq = ckpt.ID.Seq
		info.Recovered = true
		info.CheckpointSeq = ckpt.ID.Seq
		s.walMet.CheckpointSeq.Set(ckpt.ID.Seq)
	}
	ri, err := cfg.Log.Replay(afterSeq, s.replayRecord)
	if err != nil {
		return nil, err
	}
	info.ReplayedRecords = ri.Records
	info.Recovered = info.Recovered || ri.Records > 0
	info.LastSeq = cfg.Log.LastSeq()
	s.walMet.Replayed.Add(int64(ri.Records))

	// Drain the replayed backlog before serving. Replay only steps the
	// engine to the last record's round stamp, which can leave admitted
	// but unexecuted work behind — a repair event minted by a replayed
	// fault, or a checkpointed queue. Running the cascade dry here makes
	// the boot state a pure function of the committed history; otherwise
	// the leftover rounds race against the first post-recovery request
	// and the admission interleaving (hence the round structure) becomes
	// nondeterministic.
	//
	// A follower boot must NOT drain: the leader stamps later records
	// against its own mid-cascade rounds, so the fold has to resume from
	// exactly the replayed state. The drain happens at promotion instead.
	if !cfg.followerBoot {
		for {
			worked, err := s.engine.Step()
			if err != nil {
				return nil, fmt.Errorf("ctl: draining replayed backlog: %w", err)
			}
			if !worked {
				break
			}
		}
	}

	// Refresh the instantaneous gauges from the recovered state: a
	// scrape between recovery and the first round must already see the
	// continuous world, not zeros.
	s.refreshGauges()

	w, err := cfg.Log.OpenWriter(meta,
		wal.ID{VT: int64(s.engine.Clock()), Seq: cfg.Log.LastSeq()}, s.engine.Rounds())
	if err != nil {
		return nil, err
	}
	s.wal = w
	s.attachFsyncObserver()
	s.walSeq = w.LastSeq()
	s.walMet.LastSeq.Set(s.walSeq)

	info.Elapsed = time.Since(started)
	s.walMet.RecoveryMs.Set(info.Elapsed.Milliseconds())

	// Every WAL-backed server carries the replication hub: it accepts
	// follower sessions (up to its configured cap) and its persisted
	// term fences split-brain after a promotion elsewhere.
	term, err := repl.LoadTerm(cfg.Log.Dir())
	if err != nil {
		return nil, err
	}
	rc := ReplicationConfig{}
	if s.replCfg != nil {
		rc = *s.replCfg
	}
	s.repl = newReplState(s, term, rc)
	s.repl.wg.Add(1)
	go s.replHeartbeats()
	return info, nil
}

// ForceCheckpoint takes a checkpoint now (blocking until the state loop
// has taken it) and truncates the log behind it.
func (s *Server) ForceCheckpoint() error {
	resp := s.dispatch(Request{Op: opCheckpoint})
	if !resp.OK {
		return errors.New(resp.Error)
	}
	return nil
}

// walAppend appends one record, assigning it the next sequence number.
// State loop only. A failed append is fail-stop: the record may be
// half-written and every later ack would rest on it.
func (s *Server) walAppend(rec *wal.Record) {
	rec.ID.Seq = s.walSeq + 1
	_, b0, _, _ := s.wal.Stats()
	if err := s.wal.Append(rec); err != nil {
		panic(fmt.Sprintf("ctl: wal append: %v", err))
	}
	s.walSeq = rec.ID.Seq
	s.sinceCkpt++
	_, b1, _, _ := s.wal.Stats()
	s.walMet.Appends.Inc()
	s.walMet.Bytes.Add(b1 - b0)
	s.walMet.LastSeq.Set(s.walSeq)
	// Stage the record's frame for replication; it is published only at
	// commit, so a follower never holds records the leader could lose.
	if s.repl != nil {
		s.repl.stage(rec)
	}
}

// walCommit makes every appended record durable per the sync policy.
// Called before replies are released (append-before-ack). No-op without
// a WAL or with nothing appended since the last commit.
func (s *Server) walCommit() {
	if s.wal == nil {
		return
	}
	_, _, c0, y0 := s.wal.Stats()
	if err := s.wal.Commit(); err != nil {
		panic(fmt.Sprintf("ctl: wal commit: %v", err))
	}
	_, _, c1, y1 := s.wal.Stats()
	s.walMet.Commits.Add(c1 - c0)
	s.walMet.Syncs.Add(y1 - y0)
	// Group replication rides the group commit: publish what this commit
	// made durable, then hold the reply release until every synced
	// follower acked it (or timed out and was dropped).
	if r := s.repl; r != nil && r.role == roleLeader {
		r.publish()
		r.gate(s.walSeq)
	}
}

// maybeCheckpoint runs the automatic checkpoint cadence (state loop
// only, between command batches).
func (s *Server) maybeCheckpoint() {
	if s.wal == nil || s.ckptEvery <= 0 || s.sinceCkpt < s.ckptEvery {
		return
	}
	// A follower checkpoints only on the leader's announcement, keeping
	// both logs rotating at identical sequences.
	if r := s.repl; r != nil && r.role == roleFollower {
		return
	}
	if err := s.doCheckpoint(); err != nil {
		panic(fmt.Sprintf("ctl: checkpoint: %v", err))
	}
}

// doCheckpoint freezes the folded state, rotates the log onto a fresh
// segment based at the current sequence, and purges covered segments.
// State loop only.
func (s *Server) doCheckpoint() error {
	state, err := json.Marshal(s.buildCheckpoint())
	if err != nil {
		return err
	}
	id := wal.ID{VT: int64(s.engine.Clock()), Seq: s.walSeq}
	w, err := s.walLog.Rotate(s.wal, state, id, s.engine.Rounds())
	if err != nil {
		// Rotate closed the old writer; the server cannot append anymore.
		// Surface the error — the next append will be fail-stop.
		return err
	}
	s.wal = w
	s.attachFsyncObserver()
	s.sinceCkpt = 0
	s.walMet.Checkpoints.Inc()
	s.walMet.CheckpointSeq.Set(id.Seq)
	if r := s.repl; r != nil && r.role == roleLeader && r.nFollowers.Load() > 0 {
		r.announce(id, s.engine.Rounds())
	}
	return nil
}

// attachFsyncObserver routes the writer's per-fsync wall durations into
// the fsync latency histogram. Re-attached after every segment rotation
// (Rotate returns a fresh writer).
func (s *Server) attachFsyncObserver() {
	s.wal.SetSyncObserver(func(ns int64) { s.lat.WALFsync.Observe(ns) })
}

// buildCheckpoint captures the full controller state (state loop only).
func (s *Server) buildCheckpoint() *checkpointDoc {
	net := s.planner.Network()
	col := s.engine.Collector()
	met := s.engine.Tracer().Metrics()
	doc := &checkpointDoc{
		NextID:  s.nextID,
		Order:   append([]int64(nil), s.order...),
		Done:    col.Records(),
		Engine:  s.engine.ExportState(),
		Network: snapshot.Capture(net),

		DecisionEvals:    col.DecisionEvals,
		PlanTimeNs:       int64(col.PlanTime),
		MakespanNs:       int64(col.Makespan),
		FaultsInjected:   col.FaultsInjected,
		RepairEvents:     col.RepairEvents,
		FlowsDisrupted:   col.FlowsDisrupted,
		InstallRetries:   col.InstallRetries,
		InstallRollbacks: col.InstallRollbacks,

		Ingest: ingestState{
			Accepted:  s.ingest.Accepted.Value(),
			Rejected:  s.ingest.Rejected.Value(),
			Retried:   s.ingest.Retried.Value(),
			Batches:   s.ingest.Batches.Value(),
			BatchSize: s.ingest.BatchSize.State(),
		},
		Sim: simMetricState{
			Rounds:        met.Rounds.Value(),
			EventsDone:    met.EventsDone.Value(),
			FlowsAdmitted: met.FlowsAdmitted.Value(),
			FlowsFailed:   met.FlowsFailed.Value(),

			FaultsInjected:   met.FaultsInjected.Value(),
			RepairEvents:     met.RepairEvents.Value(),
			FlowsDisrupted:   met.FlowsDisrupted.Value(),
			InstallRetries:   met.InstallRetries.Value(),
			InstallRollbacks: met.InstallRollbacks.Value(),

			ECT:             met.ECT.State(),
			QueuingDelay:    met.QueuingDelay.State(),
			ProbeDirtyLinks: met.ProbeDirtyLinks.State(),
		},
	}
	for _, ev := range s.engine.QueueEvents() {
		qe := queuedEvent{
			ID:        int64(ev.ID),
			Kind:      ev.Kind,
			ArrivalNs: int64(ev.Arrival),
			Flows:     make([]wal.FlowSpec, len(ev.Specs)),
		}
		for i, sp := range ev.Specs {
			qe.Flows[i] = wal.FlowSpec{
				Src: int(sp.Src), Dst: int(sp.Dst),
				DemandBps: int64(sp.Demand), SizeBytes: sp.Size,
			}
		}
		doc.Queue = append(doc.Queue, qe)
	}
	if rc, ok := s.sched.(rngCarrier); ok {
		doc.RNG.Scheduler = rc.RNGDraws()
	}
	if rc, ok := net.Selector().(rngCarrier); ok {
		doc.RNG.Selector = rc.RNGDraws()
	}
	return doc
}

// restoreCheckpoint thaws a checkpoint into the freshly built server:
// network flows, engine run state, event table, queue, metrics and RNG
// positions. Runs before the state loop starts.
func (s *Server) restoreCheckpoint(ckpt *wal.Checkpoint) error {
	if ckpt.Format != wal.FormatVersion {
		return fmt.Errorf("ctl: checkpoint format %d, want %d", ckpt.Format, wal.FormatVersion)
	}
	var doc checkpointDoc
	if err := json.Unmarshal(ckpt.State, &doc); err != nil {
		return fmt.Errorf("ctl: decoding checkpoint: %w", err)
	}
	if doc.Engine.ClockNs != ckpt.ID.VT || doc.Engine.Rounds != ckpt.Rounds {
		return fmt.Errorf("%w: checkpoint stamped (vt=%d, rounds=%d) but carries (vt=%d, rounds=%d)",
			ErrReplayDiverged, ckpt.ID.VT, ckpt.Rounds, doc.Engine.ClockNs, doc.Engine.Rounds)
	}
	net := s.planner.Network()
	flows, err := snapshot.Populate(net, doc.Network)
	if err != nil {
		return fmt.Errorf("ctl: restoring network: %w", err)
	}
	if err := s.engine.RestoreState(doc.Engine, flows); err != nil {
		return err
	}

	// Event table: queued events are rebuilt whole (they still need to
	// execute); done events are rebuilt as shells carrying exactly the
	// fields status/results render.
	s.nextID = doc.NextID
	s.order = append(s.order[:0], doc.Order...)
	queueEvs := make([]*core.Event, len(doc.Queue))
	for i, qe := range doc.Queue {
		specs := make([]flow.Spec, len(qe.Flows))
		for j, f := range qe.Flows {
			specs[j] = flow.Spec{
				Src:    topology.NodeID(f.Src),
				Dst:    topology.NodeID(f.Dst),
				Demand: topology.Bandwidth(f.DemandBps),
				Size:   f.SizeBytes,
			}
		}
		ev := core.NewEvent(flow.EventID(qe.ID), qe.Kind, time.Duration(qe.ArrivalNs), specs)
		queueEvs[i] = ev
		s.events[qe.ID] = ev
	}
	s.engine.RestoreQueue(queueEvs)
	for _, r := range doc.Done {
		s.events[int64(r.Event)] = &core.Event{
			ID:          r.Event,
			Kind:        r.Kind,
			Specs:       make([]flow.Spec, r.Flows+r.Failed),
			Arrival:     r.Arrival,
			Start:       r.Start,
			Completion:  r.Completion,
			Started:     true,
			Done:        true,
			CostAtExec:  r.Cost,
			Flows:       make([]*flow.Flow, r.Flows),
			FailedSpecs: make([]flow.Spec, r.Failed),
		}
	}

	col := s.engine.Collector()
	col.Restore(doc.Done)
	col.DecisionEvals = doc.DecisionEvals
	col.PlanTime = time.Duration(doc.PlanTimeNs)
	col.Makespan = time.Duration(doc.MakespanNs)
	col.FaultsInjected = doc.FaultsInjected
	col.RepairEvents = doc.RepairEvents
	col.FlowsDisrupted = doc.FlowsDisrupted
	col.InstallRetries = doc.InstallRetries
	col.InstallRollbacks = doc.InstallRollbacks

	s.ingest.Accepted.Add(doc.Ingest.Accepted)
	s.ingest.Rejected.Add(doc.Ingest.Rejected)
	s.ingest.Retried.Add(doc.Ingest.Retried)
	s.ingest.Batches.Add(doc.Ingest.Batches)
	s.ingest.BatchSize.Restore(doc.Ingest.BatchSize)

	met := s.engine.Tracer().Metrics()
	met.Rounds.Add(doc.Sim.Rounds)
	met.EventsDone.Add(doc.Sim.EventsDone)
	met.FlowsAdmitted.Add(doc.Sim.FlowsAdmitted)
	met.FlowsFailed.Add(doc.Sim.FlowsFailed)
	met.FaultsInjected.Add(doc.Sim.FaultsInjected)
	met.RepairEvents.Add(doc.Sim.RepairEvents)
	met.FlowsDisrupted.Add(doc.Sim.FlowsDisrupted)
	met.InstallRetries.Add(doc.Sim.InstallRetries)
	met.InstallRollbacks.Add(doc.Sim.InstallRollbacks)
	met.ECT.Restore(doc.Sim.ECT)
	met.QueuingDelay.Restore(doc.Sim.QueuingDelay)
	met.ProbeDirtyLinks.Restore(doc.Sim.ProbeDirtyLinks)

	if rc, ok := s.sched.(rngCarrier); ok {
		rc.RestoreRNG(doc.RNG.Scheduler)
	}
	if rc, ok := net.Selector().(rngCarrier); ok {
		rc.RestoreRNG(doc.RNG.Selector)
	}
	return nil
}

// refreshGauges recomputes the instantaneous gauges from current state.
func (s *Server) refreshGauges() {
	met := s.engine.Tracer().Metrics()
	col := s.engine.Collector()
	met.QueueDepth.Set(int64(s.engine.QueueLen()))
	met.VirtualClock.Set(int64(s.engine.Clock()))
	met.Utilization.Set(s.planner.Network().Utilization())
	met.LinksDown.Set(int64(s.engine.LinksDown()))
	met.SetProbeStats(int64(col.ProbeCacheHits), int64(col.ProbeCacheMisses))
	met.SetProbeDetail(int64(col.ProbeCold), int64(col.ProbeIncremental))
}

// replayRecord re-admits one log record during recovery: step the
// engine to the record's round stamp, check the logical clock, and take
// the same admission path a live request would — the fold that defines
// what the state must be.
func (s *Server) replayRecord(rec *wal.Record) error {
	if err := s.stepTo(rec.Rounds); err != nil {
		return err
	}
	if vt := int64(s.engine.Clock()); vt != rec.ID.VT {
		return fmt.Errorf("%w: record seq %d stamped vt=%d, engine at vt=%d",
			ErrReplayDiverged, rec.ID.Seq, rec.ID.VT, vt)
	}
	switch rec.Type {
	case wal.TypeEvent:
		e := rec.Event
		if e.EventID != s.nextID {
			return fmt.Errorf("%w: record seq %d admits event %d, expected %d",
				ErrReplayDiverged, rec.ID.Seq, e.EventID, s.nextID)
		}
		specs := make([]flow.Spec, len(e.Flows))
		for i, f := range e.Flows {
			specs[i] = flow.Spec{
				Src:    topology.NodeID(f.Src),
				Dst:    topology.NodeID(f.Dst),
				Demand: topology.Bandwidth(f.DemandBps),
				Size:   f.SizeBytes,
			}
		}
		ev := core.NewEvent(flow.EventID(e.EventID), e.Kind, s.engine.Clock(), specs)
		s.events[e.EventID] = ev
		s.order = append(s.order, e.EventID)
		s.engine.Enqueue(ev)
		s.nextID += s.idStride
		s.ingest.Accepted.Inc()
		if e.Retry {
			s.ingest.Retried.Inc()
		}
		if e.BatchSize > 0 {
			s.ingest.Batches.Inc()
			s.ingest.BatchSize.Observe(int64(e.BatchSize))
		}
		return nil

	case wal.TypeFault:
		f := rec.Fault
		out, err := s.engine.InjectFault(fault.Injection{
			At:     s.engine.Clock(),
			Action: fault.Action(f.Action),
			Link:   f.Link,
			Node:   f.Node,
			Event:  f.Event,
			Times:  f.Times,
		})
		if err != nil {
			return fmt.Errorf("%w: record seq %d fault %q failed: %v",
				ErrReplayDiverged, rec.ID.Seq, f.Action, err)
		}
		var repairID int64
		if ev := out.RepairEvent; ev != nil {
			repairID = int64(ev.ID)
			s.events[repairID] = ev
			s.order = append(s.order, repairID)
		}
		if repairID != f.RepairEventID {
			return fmt.Errorf("%w: record seq %d fault minted repair event %d, log recorded %d",
				ErrReplayDiverged, rec.ID.Seq, repairID, f.RepairEventID)
		}
		return nil

	default:
		return fmt.Errorf("%w: record seq %d has unexpected type %d",
			ErrReplayDiverged, rec.ID.Seq, rec.Type)
	}
}

// stepTo runs scheduling rounds until the engine reaches the target
// round count. A stall short of the target means the replayed world has
// less work than the recorded one did — a divergence.
func (s *Server) stepTo(rounds int64) error {
	for s.engine.Rounds() < rounds {
		worked, err := s.engine.Step()
		if err != nil {
			return fmt.Errorf("ctl: replay round: %w", err)
		}
		if !worked {
			return fmt.Errorf("%w: engine stalled at round %d short of recorded round %d",
				ErrReplayDiverged, s.engine.Rounds(), rounds)
		}
	}
	return nil
}
