package ctl

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// WireServer owns the connection-facing half of a controller: the accept
// loop, the per-connection codec detection (binary v2 frames, JSON v1
// lines, or a magic-routed raw stream), and response encoding. It is the
// one wire surface both the in-process engine server (Server) and the
// shard-routing gateway (internal/shard) serve the protocol through, so
// codec behavior — including the flag-gated verdict shard extension —
// cannot drift between them.
//
// A WireServer never touches engine state: every decoded request goes to
// Handle, which runs on the connection goroutine and must be safe for
// concurrent calls.
type WireServer struct {
	// Handle answers one decoded request. ingestWall is the server wall
	// clock when the request came off the wire (the span pipeline's
	// ingest stamp). Required.
	Handle func(req Request, ingestWall int64) Response
	// Stream, when non-nil, takes over a connection whose first byte is
	// StreamMagic (a raw replication stream). Without it such
	// connections fall through to the JSON codec and die on parse.
	Stream func(conn net.Conn, br *bufio.Reader)
	// StreamMagic is the first byte routed to Stream (e.g.
	// repl.StreamMagic). Ignored when Stream is nil.
	StreamMagic byte
	// FramesV1/FramesV2/CodecConns observe decoded requests per codec and
	// live binary connections; any may be nil.
	FramesV1   interface{ Inc() }
	FramesV2   interface{ Inc() }
	CodecConns interface{ Add(int64) }

	mu       sync.Mutex
	listener net.Listener
	open     map[net.Conn]struct{}
	closed   bool
	closing  chan struct{}
	conns    sync.WaitGroup
	initOnce sync.Once
}

// init lazily builds the channel/map fields so a zero-value-plus-Handle
// WireServer works.
func (w *WireServer) init() {
	w.initOnce.Do(func() {
		w.open = make(map[net.Conn]struct{})
		w.closing = make(chan struct{})
	})
}

// Closing returns a channel closed when Close begins, for fast-failing
// work racing shutdown.
func (w *WireServer) Closing() <-chan struct{} {
	w.init()
	return w.closing
}

// Serve accepts connections on l until Close. It returns ErrServerClosed
// after a clean shutdown.
func (w *WireServer) Serve(l net.Listener) error {
	w.init()
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrServerClosed
	}
	w.listener = l
	w.mu.Unlock()

	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-w.closing:
				return ErrServerClosed
			default:
				return fmt.Errorf("ctl: accept: %w", err)
			}
		}
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			if cerr := conn.Close(); cerr != nil {
				return fmt.Errorf("ctl: closing late conn: %w", cerr)
			}
			return ErrServerClosed
		}
		w.open[conn] = struct{}{}
		w.mu.Unlock()

		w.conns.Add(1)
		go w.handleConn(conn)
	}
}

// ListenAndServe listens on addr and serves until Close.
func (w *WireServer) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("ctl: listen: %w", err)
	}
	return w.Serve(l)
}

// Close stops accepting, closes open connections and waits for every
// connection handler to exit. Idempotent. Handlers may still have work
// in flight when closing fires; the owner's Handle keeps answering
// (typically with ErrServerClosed) until conns drain — see
// Server.drainOnClose for the engine-server sequencing.
func (w *WireServer) Close() error {
	w.init()
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	close(w.closing)
	var firstErr error
	if w.listener != nil {
		firstErr = w.listener.Close()
	}
	for conn := range w.open {
		// A stream session may have already closed its own conn (follower
		// detach, ack-reader failure); that is its normal end state, not a
		// close failure.
		if err := conn.Close(); err != nil && firstErr == nil && !errors.Is(err, net.ErrClosed) {
			firstErr = err
		}
	}
	w.mu.Unlock()
	w.conns.Wait()
	return firstErr
}

// handleConn serves one client. The codec is per-connection, detected
// from the first byte: FrameMagic opens a binary v2 stream, StreamMagic
// a raw stream (replication), anything else a line-delimited JSON v1
// stream. Detection must happen before any json.Decoder touches the
// socket — the decoder reads ahead, so per-frame codec switching on one
// connection is impossible.
func (w *WireServer) handleConn(conn net.Conn) {
	defer w.conns.Done()
	defer func() {
		w.mu.Lock()
		delete(w.open, conn)
		w.mu.Unlock()
		_ = conn.Close() // double-close on shutdown path is harmless
	}()

	br := bufio.NewReader(conn)
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	if first[0] == FrameMagic {
		w.serveBinary(conn, br)
		return
	}
	if w.Stream != nil && first[0] == w.StreamMagic {
		w.Stream(conn, br)
		return
	}
	w.serveJSON(conn, br)
}

// serveJSON answers a stream of JSON requests, one JSON response each.
func (w *WireServer) serveJSON(conn net.Conn, br *bufio.Reader) {
	dec := json.NewDecoder(br)
	enc := json.NewEncoder(conn)
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			return // EOF, closed connection, or unframeable garbage: drop
		}
		req, err := ParseRequest(raw)
		if err != nil {
			// Well-framed JSON but a bad request: answer the error and
			// keep the connection.
			if encErr := enc.Encode(Response{OK: false, Error: err.Error()}); encErr != nil {
				return
			}
			continue
		}
		if w.FramesV1 != nil {
			w.FramesV1.Inc()
		}
		resp := w.Handle(*req, time.Now().UnixNano())
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// serveBinary answers a stream of binary v2 frames. Responses are
// buffered and flushed only before a read would block, so a pipelining
// client streaming many frames gets its responses in large writes
// without a flush (or a round-trip stall) per request.
func (w *WireServer) serveBinary(conn net.Conn, br *bufio.Reader) {
	if w.CodecConns != nil {
		w.CodecConns.Add(1)
		defer w.CodecConns.Add(-1)
	}
	bw := bufio.NewWriterSize(conn, 64<<10)
	header := make([]byte, FrameHeaderSize)
	var frame, out []byte
	for {
		// Flush pending responses before a blocking read: if the client
		// has nothing more buffered for us, it is waiting on an answer.
		if bw.Buffered() > 0 && br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
		if _, err := io.ReadFull(br, header); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(header[4:8])
		if header[0] != FrameMagic || n > MaxFramePayload {
			// The stream cannot be resynchronized past a corrupt header;
			// answer the error and drop the connection.
			if out, err := AppendResponseFrame(out[:0], &Response{
				OK: false, Error: fmt.Sprintf("%v: bad frame header", ErrBadRequest),
			}); err == nil {
				_, _ = bw.Write(out)
			}
			_ = bw.Flush()
			return
		}
		need := FrameHeaderSize + int(n)
		if cap(frame) < need {
			frame = make([]byte, need)
		}
		frame = frame[:need]
		copy(frame, header)
		if _, err := io.ReadFull(br, frame[FrameHeaderSize:]); err != nil {
			return
		}
		req, err := ParseRequest(frame)
		if err != nil {
			// A framed but invalid request (bad version byte, unknown op,
			// bad payload): answer the error, keep the connection.
			out, err = AppendResponseFrame(out[:0], &Response{OK: false, Error: err.Error()})
			if err != nil {
				return
			}
			if _, err := bw.Write(out); err != nil {
				return
			}
			continue
		}
		if w.FramesV2 != nil {
			w.FramesV2.Inc()
		}
		resp := w.Handle(*req, time.Now().UnixNano())
		// The verdict shard extension is request-gated: only a frame that
		// asked for shard info gets the extended verdict encoding.
		out, err = AppendResponseFrameFor(out[:0], &resp, req.ShardInfo)
		if err != nil {
			return
		}
		if _, err := bw.Write(out); err != nil {
			return
		}
	}
}
