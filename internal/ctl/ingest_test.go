package ctl

import (
	"encoding/json"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"netupdate/internal/sched"
)

func TestSubmitBatch(t *testing.T) {
	client, ft := startServer(t, sched.NewLMTF(2, 1))
	events := make([]EventSpec, 6)
	for i := range events {
		events[i] = eventSpec(ft, 2+i%3, 5)
	}
	verdicts, overload, err := client.SubmitBatch(events)
	if err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	if overload != nil {
		t.Fatalf("overload info on an empty queue: %+v", overload)
	}
	if len(verdicts) != len(events) {
		t.Fatalf("verdicts = %d, want %d", len(verdicts), len(events))
	}
	var prev int64
	for i, v := range verdicts {
		if !v.OK || v.EventID == 0 {
			t.Fatalf("verdict %d = %+v, want accepted", i, v)
		}
		if v.EventID <= prev {
			t.Errorf("verdict %d ID %d not increasing (prev %d)", i, v.EventID, prev)
		}
		prev = v.EventID
	}
	for _, v := range verdicts {
		if _, err := client.WaitDone(v.EventID, 5*time.Second); err != nil {
			t.Fatalf("WaitDone(%d): %v", v.EventID, err)
		}
	}
	results, err := client.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(events) {
		t.Errorf("results = %d, want %d", len(results), len(events))
	}
}

func TestSubmitBatchOverloadVerdicts(t *testing.T) {
	const watermark = 3
	client, ft := startServer(t, sched.FIFO{}, WithHighWatermark(watermark))
	// One request larger than the watermark: the due prefix is admitted,
	// the remainder rejected — deterministically, because staging counts
	// within the request before the state loop runs any rounds.
	events := make([]EventSpec, 10)
	for i := range events {
		events[i] = eventSpec(ft, 2, 5)
	}
	verdicts, overload, err := client.SubmitBatch(events)
	if err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	var accepted, rejected int
	for i, v := range verdicts {
		switch {
		case v.OK:
			accepted++
			if i >= watermark {
				t.Errorf("verdict %d accepted past watermark", i)
			}
		case v.Overloaded:
			rejected++
			if !strings.Contains(v.Error, "overloaded") {
				t.Errorf("overload verdict %d error = %q", i, v.Error)
			}
		default:
			t.Errorf("verdict %d = %+v, want accepted or overloaded", i, v)
		}
	}
	if accepted != watermark || rejected != len(events)-watermark {
		t.Fatalf("accepted/rejected = %d/%d, want %d/%d",
			accepted, rejected, watermark, len(events)-watermark)
	}
	if overload == nil {
		t.Fatal("no overload info despite rejections")
	}
	if overload.Watermark != watermark || overload.QueueDepth < watermark {
		t.Errorf("overload = %+v, want watermark %d and depth >= it", overload, watermark)
	}
	if overload.RetryAfterMs < 5 {
		t.Errorf("retry-after hint %dms below the 5ms floor", overload.RetryAfterMs)
	}

	// Accepted events still complete, and stats account for every outcome.
	for _, v := range verdicts {
		if v.OK {
			if _, err := client.WaitDone(v.EventID, 5*time.Second); err != nil {
				t.Fatal(err)
			}
		}
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.IngestWatermark != watermark {
		t.Errorf("stats watermark = %d, want %d", stats.IngestWatermark, watermark)
	}
	if stats.IngestAccepted != int64(accepted) || stats.IngestRejected != int64(rejected) {
		t.Errorf("stats accepted/rejected = %d/%d, want %d/%d",
			stats.IngestAccepted, stats.IngestRejected, accepted, rejected)
	}
	if stats.IngestBatches != 1 {
		t.Errorf("stats batches = %d, want 1", stats.IngestBatches)
	}
	if stats.IngestRetried != 0 {
		t.Errorf("stats retried = %d, want 0", stats.IngestRetried)
	}

	// The queue has drained; a marked resubmission of the rejected tail is
	// admitted and counted as retried.
	retryBatch := events[:2]
	verdicts2, _, err := client.submitBatch(retryBatch, true)
	if err != nil {
		t.Fatalf("retry submitBatch: %v", err)
	}
	for i, v := range verdicts2 {
		if !v.OK {
			t.Fatalf("retry verdict %d = %+v, want accepted", i, v)
		}
	}
	stats, err = client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.IngestRetried != int64(len(retryBatch)) {
		t.Errorf("stats retried = %d, want %d", stats.IngestRetried, len(retryBatch))
	}
}

func TestSubmitBatchValidationVerdicts(t *testing.T) {
	client, ft := startServer(t, sched.FIFO{})
	good := eventSpec(ft, 2, 5)
	bad := EventSpec{} // no flows
	verdicts, overload, err := client.SubmitBatch([]EventSpec{good, bad, good})
	if err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	if overload != nil {
		t.Errorf("validation failure reported as overload: %+v", overload)
	}
	if !verdicts[0].OK || !verdicts[2].OK {
		t.Errorf("valid events rejected: %+v", verdicts)
	}
	if verdicts[1].OK || verdicts[1].Overloaded || verdicts[1].Error == "" {
		t.Errorf("invalid event verdict = %+v, want plain validation error", verdicts[1])
	}
}

// scriptedServer answers each decoded request with the next canned
// response, recording the requests it saw. It lets client-side overload
// handling be tested deterministically, without racing a live state loop.
func scriptedServer(t *testing.T, responses []Response) (*Client, *[]Request) {
	t.Helper()
	cli, srv := net.Pipe()
	reqs := &[]Request{}
	var mu sync.Mutex
	go func() {
		dec := json.NewDecoder(srv)
		enc := json.NewEncoder(srv)
		for _, resp := range responses {
			var req Request
			if err := dec.Decode(&req); err != nil {
				return
			}
			mu.Lock()
			*reqs = append(*reqs, req)
			mu.Unlock()
			if err := enc.Encode(resp); err != nil {
				return
			}
		}
		_ = srv.Close()
	}()
	c := NewClient(cli)
	t.Cleanup(func() { _ = c.Close() })
	return c, reqs
}

func TestOverloadErrorMapping(t *testing.T) {
	c, _ := scriptedServer(t, []Response{{
		OK:       false,
		Error:    "ctl: overloaded",
		Overload: &OverloadInfo{QueueDepth: 7, Watermark: 4, RetryAfterMs: 25},
	}})
	_, err := c.Submit(EventSpec{Flows: []FlowSpec{{Src: 0, Dst: 1, DemandBps: 1}}})
	if err == nil {
		t.Fatal("Submit succeeded, want overload error")
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("errors.Is(err, ErrOverloaded) = false for %v", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("errors.As(*OverloadError) = false for %v", err)
	}
	if oe.QueueDepth != 7 || oe.Watermark != 4 || oe.RetryAfter != 25*time.Millisecond {
		t.Errorf("OverloadError = %+v, want depth 7, watermark 4, 25ms", oe)
	}
}

func TestSubmitBatchRetryBackoff(t *testing.T) {
	events := []EventSpec{
		{Flows: []FlowSpec{{Src: 0, Dst: 1, DemandBps: 1}}},
		{Flows: []FlowSpec{{Src: 2, Dst: 3, DemandBps: 1}}},
		{Flows: []FlowSpec{{Src: 4, Dst: 5, DemandBps: 1}}},
	}
	c, reqs := scriptedServer(t, []Response{
		{
			OK: true,
			Verdicts: []SubmitVerdict{
				{OK: true, EventID: 1},
				{Error: "ctl: overloaded", Overloaded: true},
				{Error: "ctl: overloaded", Overloaded: true},
			},
			Overload: &OverloadInfo{QueueDepth: 9, Watermark: 8, RetryAfterMs: 1},
		},
		{
			OK: true,
			Verdicts: []SubmitVerdict{
				{OK: true, EventID: 2},
				{OK: true, EventID: 3},
			},
		},
	})
	ids, err := c.SubmitBatchRetry(events, 3)
	if err != nil {
		t.Fatalf("SubmitBatchRetry: %v", err)
	}
	if ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
		t.Errorf("ids = %v, want [1 2 3]", ids)
	}
	got := *reqs
	if len(got) != 2 {
		t.Fatalf("requests = %d, want 2", len(got))
	}
	if got[0].Retry {
		t.Error("first attempt marked as retry")
	}
	if !got[1].Retry {
		t.Error("resubmission not marked as retry")
	}
	if len(got[1].Events) != 2 {
		t.Errorf("resubmission carries %d events, want the 2 rejected", len(got[1].Events))
	}
}

func TestSubmitBatchRetryGivesUp(t *testing.T) {
	overloadedAll := Response{
		OK: true,
		Verdicts: []SubmitVerdict{
			{Error: "ctl: overloaded", Overloaded: true},
		},
		Overload: &OverloadInfo{QueueDepth: 10, Watermark: 8, RetryAfterMs: 1},
	}
	c, _ := scriptedServer(t, []Response{overloadedAll, overloadedAll})
	ids, err := c.SubmitBatchRetry([]EventSpec{
		{Flows: []FlowSpec{{Src: 0, Dst: 1, DemandBps: 1}}},
	}, 2)
	if err == nil {
		t.Fatal("SubmitBatchRetry succeeded, want overload error")
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("errors.Is(err, ErrOverloaded) = false for %v", err)
	}
	if ids[0] != 0 {
		t.Errorf("ids = %v, want unaccepted", ids)
	}
}

func TestProtocolVersionNegotiation(t *testing.T) {
	// Unit level: the parser owns the version check.
	if _, err := ParseRequest([]byte(`{"v":1,"op":"ping"}`)); err != nil {
		t.Errorf("v1 ping rejected: %v", err)
	}
	_, err := ParseRequest([]byte(`{"v":2,"op":"ping"}`))
	if !errors.Is(err, ErrUnsupportedVersion) {
		t.Errorf("v2 ping error = %v, want ErrUnsupportedVersion", err)
	}

	// Wire level: the server answers the error and keeps the connection.
	client, _ := startServer(t, sched.FIFO{})
	conn, err := net.Dial("tcp", client.conn.RemoteAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(conn)
	if err := enc.Encode(Request{Version: 2, Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Error, "unsupported protocol version") {
		t.Errorf("v2 response = %+v, want version rejection", resp)
	}
	if err := enc.Encode(Request{Version: 1, Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Errorf("v1 ping after v2 reject = %+v, want OK", resp)
	}
}

// TestBurstAdmission drives many concurrent single submissions through
// the buffered command channel: everything below the watermark must be
// admitted (no spurious overloads) and complete.
func TestBurstAdmission(t *testing.T) {
	client, ft := startServer(t, sched.FIFO{})
	addr := client.conn.RemoteAddr().String()
	const conns = 4
	const perConn = 8
	var wg sync.WaitGroup
	errCh := make(chan error, conns)
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			for i := 0; i < perConn; i++ {
				if _, err := c.Submit(eventSpec(ft, 2, 5)); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		stats, err := client.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if stats.IngestRejected != 0 {
			t.Fatalf("burst below watermark rejected %d events", stats.IngestRejected)
		}
		if stats.EventsDone == conns*perConn {
			if stats.IngestAccepted != conns*perConn {
				t.Fatalf("accepted = %d, want %d", stats.IngestAccepted, conns*perConn)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d events done", stats.EventsDone, conns*perConn)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
