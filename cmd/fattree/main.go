// Command fattree inspects the Fat-Tree substrate: topology statistics,
// path-set sizes, and the link-utilization distribution after a background
// fill — useful for sanity-checking workload setups before running
// experiments.
//
// Usage:
//
//	fattree [-k 8] [-util 0.6] [-seed 1] [-trace yahoo|random]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"netupdate/internal/netstate"
	"netupdate/internal/routing"
	"netupdate/internal/snapshot"
	"netupdate/internal/topology"
	"netupdate/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("fattree", flag.ContinueOnError)
	var (
		k         = fs.Int("k", 8, "fat-tree arity (even)")
		util      = fs.Float64("util", 0.6, "background utilization target (0 disables)")
		seed      = fs.Int64("seed", 1, "random seed")
		traceName = fs.String("trace", "yahoo", "background traffic model: yahoo|random")
		snapOut   = fs.String("snapshot", "", "write the loaded state as a JSON snapshot to this path")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var model trace.Model
	switch *traceName {
	case "yahoo":
		model = trace.YahooLike{}
	case "random":
		model = trace.Uniform{}
	default:
		fmt.Fprintf(os.Stderr, "fattree: unknown trace %q\n", *traceName)
		return 2
	}

	ft, err := topology.NewFatTree(*k, topology.Gbps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fattree: %v\n", err)
		return 1
	}
	g := ft.Graph()
	fmt.Printf("fat-tree k=%d: %d switches (%d core, %d agg, %d edge), %d hosts, %d directed links\n",
		*k, ft.NumSwitches(), len(ft.Cores()), *k*(*k/2), *k*(*k/2), ft.NumHosts(), g.NumLinks())

	prov := routing.NewFatTreeProvider(ft)
	sameEdge := prov.Paths(ft.Host(0, 0, 0), ft.Host(0, 0, 1))
	samePod := prov.Paths(ft.Host(0, 0, 0), ft.Host(0, 1, 0))
	crossPod := prov.Paths(ft.Host(0, 0, 0), ft.Host(1, 0, 0))
	fmt.Printf("ECMP path sets: same-edge %d, same-pod %d, cross-pod %d\n",
		len(sameEdge), len(samePod), len(crossPod))

	if *util <= 0 {
		return 0
	}
	net := netstate.New(g, prov, routing.NewRandomFit(*seed+7))
	gen, err := trace.NewGenerator(*seed, model, ft.Hosts())
	if err != nil {
		fmt.Fprintf(os.Stderr, "fattree: %v\n", err)
		return 1
	}
	placed, err := trace.FillBackground(net, gen, *util, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fattree: background fill stopped early: %v\n", err)
	}
	fmt.Printf("background: %d flows placed, utilization %.3f\n", len(placed), net.Utilization())

	var utils []float64
	for i := 0; i < g.NumLinks(); i++ {
		utils = append(utils, g.Link(topology.LinkID(i)).Utilization())
	}
	sort.Float64s(utils)
	pct := func(p int) float64 { return utils[(len(utils)-1)*p/100] }
	fmt.Printf("link utilization: p10=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f\n",
		pct(10), pct(50), pct(90), pct(99), pct(100))
	saturated := 0
	for _, u := range utils {
		if u > 0.95 {
			saturated++
		}
	}
	fmt.Printf("links above 95%% utilization: %d of %d\n", saturated, len(utils))

	if *snapOut != "" {
		f, err := os.Create(*snapOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fattree: %v\n", err)
			return 1
		}
		writeErr := snapshot.Capture(net).Write(f)
		if closeErr := f.Close(); writeErr == nil {
			writeErr = closeErr
		}
		if writeErr != nil {
			fmt.Fprintf(os.Stderr, "fattree: snapshot: %v\n", writeErr)
			return 1
		}
		fmt.Printf("snapshot written to %s\n", *snapOut)
	}
	return 0
}
