package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"netupdate/internal/topology"
)

// TestFailoverSIGKILL is the out-of-process failover chaos test: a real
// leader daemon streams its WAL to a real warm-follower daemon, the
// leader is SIGKILLed right after acknowledging a batch it has not yet
// finished executing, the follower's watchdog promotes itself, and the
// promoted daemon must (a) complete every acknowledged event — zero
// acked-event loss — and (b) finish the workload converging with a
// never-crashed reference daemon across stats, results, snapshot,
// /metrics and trace.
func TestFailoverSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real binaries; skipped in -short")
	}
	bin := buildDaemon(t)

	work := failoverWorkload(t)
	// work[killAfter] is submitted and acked but NOT waited before the
	// kill; crashWorkload schedules no fault on that chunk, so the kill
	// lands mid-execution of plain update events.
	const killAfter = 3

	// Reference daemon: same flags, own WAL, never crashed.
	refProc, refClient, _ := startDaemonProc(t, bin, filepath.Join(t.TempDir(), "wal-ref"))
	defer stopDaemonProc(t, refProc)
	for _, ch := range work {
		playCrashChunk(t, refClient, ch)
	}

	// Leader and its warm follower.
	leaderProc, leaderClient, leaderStartup := startDaemonProc(t, bin, filepath.Join(t.TempDir(), "wal-leader"))
	leaderAddr := daemonCtlAddr(t, leaderStartup)
	followerProc, followerClient, followerStartup := startDaemonProc(t, bin,
		filepath.Join(t.TempDir(), "wal-follower"),
		"-follow", leaderAddr, "-promote-after", "2s")
	defer stopDaemonProc(t, followerProc)
	wantLine := "updated: following " + leaderAddr
	if !containsPrefix(followerStartup, wantLine) {
		t.Fatalf("follower never reported %q; startup:\n%s", wantLine, strings.Join(followerStartup, "\n"))
	}

	// The follower must be synced before load starts: from then on the
	// leader's group commit gates on follower durability, so every ack
	// below implies the record is already folded on the follower.
	waitDaemon(t, 15*time.Second, "follower synced on leader", func() bool {
		info, err := leaderClient.ReplStatus()
		return err == nil && len(info.Followers) == 1 && info.Followers[0].Synced
	})

	for _, ch := range work[:killAfter] {
		playCrashChunk(t, leaderClient, ch)
	}

	// Ack a batch, then SIGKILL the leader before waiting on any of it.
	acked, err := leaderClient.SubmitBatchRetry(work[killAfter].specs, 5)
	if err != nil {
		t.Fatalf("SubmitBatchRetry: %v", err)
	}
	if err := leaderProc.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL leader: %v", err)
	}
	_ = leaderProc.Wait()
	_ = leaderClient.Close()

	// The leader-loss watchdog promotes after 2s of silence.
	waitDaemon(t, 30*time.Second, "follower auto-promoted", func() bool {
		info, err := followerClient.ReplStatus()
		return err == nil && info.Role == "leader"
	})
	info, err := followerClient.ReplStatus()
	if err != nil {
		t.Fatal(err)
	}
	if info.Term < 2 {
		t.Fatalf("promotion did not bump the term: %+v", info)
	}

	// Zero acked-event loss: every acknowledged submission completes on
	// the promoted daemon.
	for _, id := range acked {
		if _, err := followerClient.WaitDone(id, 30*time.Second); err != nil {
			t.Fatalf("acked event %d lost across failover: %v", id, err)
		}
	}

	// Finish the workload against the new leader and require convergence
	// with the never-crashed reference.
	for _, ch := range work[killAfter+1:] {
		playCrashChunk(t, followerClient, ch)
	}
	compareDaemons(t, refClient, followerClient)
}

// buildDaemon compiles the updated binary into a scratch dir.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "updated")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// failoverWorkload is the crash workload on the k=4 world every daemon
// in this file runs (startDaemonProc's shared flags), under a seed
// distinct from the crash-recovery test's.
func failoverWorkload(t *testing.T) []crashChunk {
	t.Helper()
	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	return crashWorkload(ft, 23, 6, 3)
}

// daemonCtlAddr extracts the bound control address from startup lines.
func daemonCtlAddr(t *testing.T, startup []string) string {
	t.Helper()
	for _, line := range startup {
		if s, ok := strings.CutPrefix(line, "updated: listening on "); ok {
			return s
		}
	}
	t.Fatalf("no listen line in startup:\n%s", strings.Join(startup, "\n"))
	return ""
}

func containsPrefix(lines []string, prefix string) bool {
	for _, line := range lines {
		if strings.HasPrefix(line, prefix) {
			return true
		}
	}
	return false
}

// waitDaemon polls cond until it holds or the deadline passes.
func waitDaemon(t *testing.T, timeout time.Duration, desc string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", desc)
}
