package main

import (
	"bufio"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"netupdate/internal/ctl"
	"netupdate/internal/topology"
)

// TestDaemonSmoke boots the daemon on ephemeral ports, drives one update
// event and one fault injection through a real ctl client, scrapes the
// telemetry endpoint, and shuts down cleanly via the signal path.
func TestDaemonSmoke(t *testing.T) {
	pr, pw := io.Pipe()
	stop := make(chan os.Signal, 1)
	done := make(chan int, 1)
	go func() {
		code := run([]string{
			"-addr", "127.0.0.1:0",
			"-k", "4",
			"-util", "0.3",
			"-scheduler", "p-lmtf",
			"-telemetry-addr", "127.0.0.1:0",
		}, pw, stop)
		_ = pw.Close()
		done <- code
	}()

	// The daemon prints its bound addresses before reporting ready.
	var addr, telemetryURL string
	var startup []string
	scanner := bufio.NewScanner(pr)
	for scanner.Scan() {
		line := scanner.Text()
		startup = append(startup, line)
		if s, ok := strings.CutPrefix(line, "updated: telemetry on "); ok {
			telemetryURL = s
		}
		if s, ok := strings.CutPrefix(line, "updated: listening on "); ok {
			addr = s
			break
		}
	}
	if addr == "" || telemetryURL == "" {
		t.Fatalf("daemon never reported its addresses; startup output:\n%s", strings.Join(startup, "\n"))
	}
	// Keep draining so later daemon prints never block on the pipe.
	go func() { _, _ = io.Copy(io.Discard, pr) }()

	client, err := ctl.Dial(addr)
	if err != nil {
		t.Fatalf("dial daemon: %v", err)
	}
	defer client.Close()

	// One update event end to end.
	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	hosts := ft.Hosts()
	id, err := client.Submit(ctl.EventSpec{Kind: "smoke", Flows: []ctl.FlowSpec{
		{Src: int(hosts[0]), Dst: int(hosts[1]), DemandBps: 1e6},
	}})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st, err := client.WaitDone(id, 10*time.Second)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if st.Admitted != 1 || st.Failed != 0 {
		t.Errorf("admitted/failed = %d/%d, want 1/0", st.Admitted, st.Failed)
	}

	// One fault injection, visible in stats and on the telemetry scrape.
	res, err := client.Fault(ctl.FaultSpec{Action: "link-down", Link: 0})
	if err != nil {
		t.Fatalf("fault: %v", err)
	}
	if res.LinksChanged != 1 || res.LinksDown != 1 {
		t.Errorf("fault result = %+v, want 1 link down", res)
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.FaultsInjected != 1 || stats.LinksDown != 1 {
		t.Errorf("stats faults/links down = %d/%d, want 1/1", stats.FaultsInjected, stats.LinksDown)
	}
	resp, err := http.Get(telemetryURL)
	if err != nil {
		t.Fatalf("telemetry scrape: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("telemetry status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "netupdate_faults_injected_total 1") {
		t.Errorf("/metrics missing fault counter; body:\n%.500s", body)
	}

	// Clean shutdown through the signal path.
	stop <- os.Interrupt
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("daemon exit = %d, want 0", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down within 10s")
	}
}

// TestDaemonBadFlags covers the fast-fail startup paths.
func TestDaemonBadFlags(t *testing.T) {
	stop := make(chan os.Signal)
	if code := run([]string{"-scheduler", "bogus"}, io.Discard, stop); code != 2 {
		t.Errorf("unknown scheduler exit = %d, want 2", code)
	}
	if code := run([]string{"-nonsense"}, io.Discard, stop); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
	if code := run([]string{"-k", "3"}, io.Discard, stop); code != 1 {
		t.Errorf("odd arity exit = %d, want 1", code)
	}
}
