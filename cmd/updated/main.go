// Command updated is the update-controller daemon: it owns a simulated
// data-center network (k-ary Fat-Tree pre-loaded with background traffic)
// and schedules update events submitted over the ctl protocol with the
// configured policy (FIFO, LMTF or P-LMTF).
//
// Usage:
//
//	updated [-addr :7421] [-k 8] [-util 0.6] [-scheduler p-lmtf]
//	        [-alpha 4] [-seed 1] [-telemetry-addr :9090]
//	        [-wal-dir /var/lib/updated/wal] [-wal-sync group]
//	        [-span-out /var/log/updated/spans.jsonl]
//	        [-follow leader:7421] [-promote-after 2s]
//
// With -follow set (requires -wal-dir), the daemon boots as a warm
// follower: it replicates the leader's WAL over the ctl port, folds
// every committed record into the same deterministic state, and
// rejects writes with a not-leader hint until promoted. Promotion is
// manual (`updatectl repl promote`) or automatic once the leader has
// been unreachable for -promote-after. The follower must be started
// with the same world flags as the leader (scheduler, seed, k, util,
// watermark, tables); the leader refuses mismatched followers at
// handshake. See DESIGN.md §15.
//
// With -span-out set, every event's stage-level latency span (submit,
// ingest, admit, wal_commit, probed rounds, exec, complete) is written
// as JSON lines; analyze offline with `updatectl trace report`.
//
// With -telemetry-addr set, the daemon also serves live telemetry over
// HTTP: Prometheus metrics on /metrics, expvar on /debug/vars, and
// net/http/pprof on /debug/pprof/.
//
// With -wal-dir set, every admitted event and fault injection is
// recorded in a write-ahead log before its submission is acknowledged;
// restarting the daemon with the same flags and WAL directory recovers
// the exact pre-crash state (checkpoint plus log-suffix replay).
//
// Submit work with cmd/updatectl or any client speaking line-delimited
// JSON (see internal/ctl).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	netpkg "net" // aliased: the local network state below is named net
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"netupdate/internal/core"
	"netupdate/internal/ctl"
	"netupdate/internal/migration"
	"netupdate/internal/netstate"
	"netupdate/internal/obs"
	"netupdate/internal/routing"
	"netupdate/internal/rules"
	"netupdate/internal/sched"
	"netupdate/internal/sim"
	"netupdate/internal/topology"
	"netupdate/internal/trace"
	"netupdate/internal/wal"
)

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], os.Stdout, sigs))
}

// run is the daemon body; main injects the real stdout and signal
// channel, tests inject buffers and a synthetic stop. The bound control
// address is always printed before the daemon reports ready, so callers
// using "-addr :0" learn the real port.
func run(args []string, stdout io.Writer, stop <-chan os.Signal) int {
	fs := flag.NewFlagSet("updated", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":7421", "listen address")
		k         = fs.Int("k", 8, "fat-tree arity")
		util      = fs.Float64("util", 0.6, "background utilization target")
		schedName = fs.String("scheduler", "p-lmtf", "scheduling policy (see sched.Names)")
		alpha     = fs.Int("alpha", 4, "LMTF/P-LMTF sample size")
		seed      = fs.Int64("seed", 1, "random seed")
		watermark = fs.Int("watermark", ctl.DefaultHighWatermark, "queue high-watermark: submissions past it are rejected with a retry-after hint")
		tables    = fs.Int("tables", -1, "attach per-switch rule tables with this capacity (0 = unlimited, -1 = off)")
		telemetry = fs.String("telemetry-addr", "", "HTTP telemetry address serving /metrics, /debug/vars and /debug/pprof (empty = off)")
		walDir    = fs.String("wal-dir", "", "write-ahead log directory for durable admission and crash recovery (empty = off)")
		walSync   = fs.String("wal-sync", "group", "WAL durability policy: always (fsync per record), group (fsync per commit batch), off (no fsync)")
		walCkpt   = fs.Int("wal-checkpoint-every", ctl.DefaultCheckpointEvery, "records between automatic WAL checkpoints (<0 = never)")
		spanOut   = fs.String("span-out", "", "write per-event stage latency spans to this JSONL file (empty = off); analyze with updatectl trace report")
		follow    = fs.String("follow", "", "run as a warm follower replicating from this leader ctl address (requires -wal-dir)")
		promote   = fs.Duration("promote-after", 0, "auto-promote after the leader has been unreachable this long (0 = manual promotion only; follower mode)")
		maxFoll   = fs.Int("max-followers", 0, "cap on attached replication followers (0 = library default; leader mode)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *follow != "" && *walDir == "" {
		fmt.Fprintln(os.Stderr, "updated: -follow requires -wal-dir (the follower persists the replicated log)")
		return 2
	}

	scheduler, err := sched.New(*schedName, sched.WithAlpha(*alpha), sched.WithSeed(*seed))
	if err != nil {
		// The typed error lists every registered scheduler.
		fmt.Fprintf(os.Stderr, "updated: %v\n", err)
		return 2
	}

	// Open the WAL before building the world: whether it holds a
	// checkpoint decides whether the background fill runs (a checkpoint
	// restores its own flows; replay without one folds against the
	// freshly filled genesis network).
	var walLog *wal.Log
	if *walDir != "" {
		policy, err := wal.ParseSyncPolicy(*walSync)
		if err != nil {
			fmt.Fprintf(os.Stderr, "updated: %v\n", err)
			return 2
		}
		walLog, err = wal.Open(*walDir, wal.WithSync(policy))
		if err != nil {
			fmt.Fprintf(os.Stderr, "updated: wal: %v\n", err)
			return 1
		}
	}
	var meta *wal.Meta
	if walLog != nil {
		meta = &wal.Meta{
			Format:    wal.FormatVersion,
			Scheduler: scheduler.Name(),
			Seed:      *seed,
			K:         *k,
			Util:      *util,
			Watermark: *watermark,
			Tables:    *tables,
		}
	}

	// A follower handshakes before the world is built: if the leader
	// ships a bootstrap checkpoint it is installed into the empty log
	// now, so the `restoring` decision below sees it exactly as it
	// would a locally written checkpoint.
	var followCfg ctl.FollowerConfig
	var followSess *ctl.FollowerSession
	if *follow != "" {
		followCfg = ctl.FollowerConfig{
			Log:             walLog,
			Meta:            meta,
			LeaderAddr:      *follow,
			CheckpointEvery: *walCkpt,
			PromoteAfter:    *promote,
		}
		followSess, err = ctl.FollowerBootstrap(followCfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "updated: follow %s: %v\n", *follow, err)
			return 1
		}
	}

	ft, err := topology.NewFatTree(*k, topology.Gbps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "updated: %v\n", err)
		return 1
	}
	net := netstate.New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.NewRandomFit(*seed+7))
	if *tables >= 0 {
		if err := net.AttachDataPlane(rules.NewManager(ft.Graph(), *tables)); err != nil {
			fmt.Fprintf(os.Stderr, "updated: rule tables: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "updated: two-phase rule tables attached (capacity %d per switch)\n", *tables)
	}
	gen, err := trace.NewGenerator(*seed, trace.YahooLike{}, ft.Hosts())
	if err != nil {
		fmt.Fprintf(os.Stderr, "updated: %v\n", err)
		return 1
	}
	restoring := walLog != nil && walLog.Checkpoint() != nil
	if *util > 0 && !restoring {
		placed, err := trace.FillBackground(net, gen, *util, 0)
		if err != nil && !errors.Is(err, trace.ErrTargetUnreachable) {
			fmt.Fprintf(os.Stderr, "updated: background: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "updated: background %d flows, utilization %.3f\n", len(placed), net.Utilization())
	} else if restoring {
		fmt.Fprintf(stdout, "updated: background fill skipped, restoring from checkpoint\n")
	}

	planner := core.NewPlanner(migration.NewPlanner(net, 0), core.FailSkip)
	opts := []ctl.ServerOption{ctl.WithHighWatermark(*watermark)}
	if *spanOut != "" {
		f, err := os.Create(*spanOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "updated: span-out: %v\n", err)
			return 1
		}
		// Registered before the server exists, so it runs after srv.Close
		// below has drained the async span sink into the file.
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "updated: span-out close: %v\n", err)
			}
		}()
		opts = append(opts, ctl.WithSpanSink(obs.NewJSONLSink(f)))
		fmt.Fprintf(stdout, "updated: stage spans to %s\n", *spanOut)
	}
	var srv *ctl.Server
	switch {
	case followSess != nil:
		var rec *ctl.RecoveryInfo
		srv, rec, err = ctl.NewFollower(planner, scheduler, sim.Config{}, followCfg, followSess, opts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "updated: follower recovery: %v\n", err)
			return 1
		}
		if rec.Recovered {
			fmt.Fprintf(stdout, "updated: recovered from WAL: checkpoint seq %d, %d records replayed, last seq %d (%v)\n",
				rec.CheckpointSeq, rec.ReplayedRecords, rec.LastSeq, rec.Elapsed.Round(time.Millisecond))
		}
		fmt.Fprintf(stdout, "updated: wal in %s (sync=%s)\n", *walDir, *walSync)
		if *promote > 0 {
			fmt.Fprintf(stdout, "updated: following %s (auto-promote after %v)\n", *follow, *promote)
		} else {
			fmt.Fprintf(stdout, "updated: following %s (manual promotion only)\n", *follow)
		}
	case walLog != nil:
		if *maxFoll > 0 {
			opts = append(opts, ctl.WithReplication(ctl.ReplicationConfig{MaxFollowers: *maxFoll}))
		}
		var rec *ctl.RecoveryInfo
		srv, rec, err = ctl.NewServerWithWAL(planner, scheduler, sim.Config{},
			ctl.WALConfig{Log: walLog, Meta: meta, CheckpointEvery: *walCkpt},
			opts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "updated: wal recovery: %v\n", err)
			return 1
		}
		if rec.Recovered {
			fmt.Fprintf(stdout, "updated: recovered from WAL: checkpoint seq %d, %d records replayed, last seq %d (%v)\n",
				rec.CheckpointSeq, rec.ReplayedRecords, rec.LastSeq, rec.Elapsed.Round(time.Millisecond))
		}
		fmt.Fprintf(stdout, "updated: wal in %s (sync=%s)\n", *walDir, *walSync)
	default:
		srv = ctl.NewServer(planner, scheduler, sim.Config{}, opts...)
	}

	var telemetrySrv *http.Server
	if *telemetry != "" {
		// Bind synchronously so a bad address fails at startup, not in a
		// goroutine after the daemon already reported itself healthy.
		l, err := netpkg.Listen("tcp", *telemetry)
		if err != nil {
			fmt.Fprintf(os.Stderr, "updated: telemetry: %v\n", err)
			return 1
		}
		telemetrySrv = &http.Server{Handler: obs.Handler(srv.Registry())}
		go func() {
			if err := telemetrySrv.Serve(l); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "updated: telemetry: %v\n", err)
			}
		}()
		fmt.Fprintf(stdout, "updated: telemetry on http://%s/metrics\n", l.Addr())
		defer func() {
			if err := telemetrySrv.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "updated: telemetry close: %v\n", err)
			}
		}()
	}

	// Bind the control port before serving so a taken address fails fast
	// and the printed address is the real one even for ":0".
	l, err := netpkg.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "updated: listen: %v\n", err)
		return 1
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	fmt.Fprintf(stdout, "updated: listening on %s\n", l.Addr())
	fmt.Fprintf(stdout, "updated: %s scheduler on %s (k=%d, %d hosts)\n",
		scheduler.Name(), l.Addr(), *k, ft.NumHosts())

	select {
	case sig := <-stop:
		fmt.Fprintf(stdout, "updated: %v, shutting down\n", sig)
		if err := srv.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "updated: close: %v\n", err)
			return 1
		}
		if err := <-serveErr; err != nil && !errors.Is(err, ctl.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "updated: %v\n", err)
			return 1
		}
		return 0
	case err := <-serveErr:
		if err != nil && !errors.Is(err, ctl.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "updated: %v\n", err)
			return 1
		}
		return 0
	}
}
