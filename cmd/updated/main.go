// Command updated is the update-controller daemon: it owns a simulated
// data-center network (k-ary Fat-Tree pre-loaded with background traffic)
// and schedules update events submitted over the ctl protocol with the
// configured policy (FIFO, LMTF or P-LMTF).
//
// Usage:
//
//	updated [-addr :7421] [-k 8] [-util 0.6] [-scheduler p-lmtf]
//	        [-alpha 4] [-seed 1] [-telemetry-addr :9090]
//	        [-wal-dir /var/lib/updated/wal] [-wal-sync group]
//	        [-span-out /var/log/updated/spans.jsonl]
//	        [-follow leader:7421] [-promote-after 2s]
//
// With -follow set (requires -wal-dir), the daemon boots as a warm
// follower: it replicates the leader's WAL over the ctl port, folds
// every committed record into the same deterministic state, and
// rejects writes with a not-leader hint until promoted. Promotion is
// manual (`updatectl repl promote`) or automatic once the leader has
// been unreachable for -promote-after. The follower must be started
// with the same world flags as the leader (scheduler, seed, k, util,
// watermark, tables); the leader refuses mismatched followers at
// handshake. See DESIGN.md §15.
//
// With -shards N (N > 1), the control plane is partitioned: N engines
// each own a contiguous range of pods and an equal slice of the core
// layer, behind an in-process gateway that speaks the ordinary ctl
// protocol, routes each event by the pods its flows touch, and
// aggregates stats, metrics and traces. Cross-shard events reserve
// core capacity from a shared pool (-cross-pool-frac) via two-phase
// admission. With -shard-addrs a1,a2,... the daemon is only the
// gateway, fronting already-running remote engines; start each of
// those with -shard-id i -shard-of N (and the same -k and world flags
// as the gateway) so it builds its slot of the same partition and
// mints strided event IDs. See DESIGN.md §16.
//
// With -span-out set, every event's stage-level latency span (submit,
// ingest, admit, wal_commit, probed rounds, exec, complete) is written
// as JSON lines; analyze offline with `updatectl trace report`.
//
// With -telemetry-addr set, the daemon also serves live telemetry over
// HTTP: Prometheus metrics on /metrics, expvar on /debug/vars, and
// net/http/pprof on /debug/pprof/.
//
// With -wal-dir set, every admitted event and fault injection is
// recorded in a write-ahead log before its submission is acknowledged;
// restarting the daemon with the same flags and WAL directory recovers
// the exact pre-crash state (checkpoint plus log-suffix replay).
//
// Submit work with cmd/updatectl or any client speaking line-delimited
// JSON (see internal/ctl).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	netpkg "net" // aliased: the local network state below is named net
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"netupdate/internal/core"
	"netupdate/internal/ctl"
	"netupdate/internal/migration"
	"netupdate/internal/netstate"
	"netupdate/internal/obs"
	"netupdate/internal/routing"
	"netupdate/internal/rules"
	"netupdate/internal/sched"
	"netupdate/internal/shard"
	"netupdate/internal/sim"
	"netupdate/internal/topology"
	"netupdate/internal/trace"
	"netupdate/internal/wal"
)

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], os.Stdout, sigs))
}

// run is the daemon body; main injects the real stdout and signal
// channel, tests inject buffers and a synthetic stop. The bound control
// address is always printed before the daemon reports ready, so callers
// using "-addr :0" learn the real port.
func run(args []string, stdout io.Writer, stop <-chan os.Signal) int {
	fs := flag.NewFlagSet("updated", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":7421", "listen address")
		k         = fs.Int("k", 8, "fat-tree arity")
		util      = fs.Float64("util", 0.6, "background utilization target")
		schedName = fs.String("scheduler", "p-lmtf", "scheduling policy (see sched.Names)")
		alpha     = fs.Int("alpha", 4, "LMTF/P-LMTF sample size")
		seed      = fs.Int64("seed", 1, "random seed")
		watermark = fs.Int("watermark", ctl.DefaultHighWatermark, "queue high-watermark: submissions past it are rejected with a retry-after hint")
		tables    = fs.Int("tables", -1, "attach per-switch rule tables with this capacity (0 = unlimited, -1 = off)")
		telemetry = fs.String("telemetry-addr", "", "HTTP telemetry address serving /metrics, /debug/vars and /debug/pprof (empty = off)")
		walDir    = fs.String("wal-dir", "", "write-ahead log directory for durable admission and crash recovery (empty = off)")
		walSync   = fs.String("wal-sync", "group", "WAL durability policy: always (fsync per record), group (fsync per commit batch), off (no fsync)")
		walCkpt   = fs.Int("wal-checkpoint-every", ctl.DefaultCheckpointEvery, "records between automatic WAL checkpoints (<0 = never)")
		spanOut   = fs.String("span-out", "", "write per-event stage latency spans to this JSONL file (empty = off); analyze with updatectl trace report")
		follow    = fs.String("follow", "", "run as a warm follower replicating from this leader ctl address (requires -wal-dir)")
		promote   = fs.Duration("promote-after", 0, "auto-promote after the leader has been unreachable this long (0 = manual promotion only; follower mode)")
		maxFoll   = fs.Int("max-followers", 0, "cap on attached replication followers (0 = library default; leader mode)")
		shards    = fs.Int("shards", 1, "partition the control plane into this many pod-sharded engines behind an in-process routing gateway")
		shardAddr = fs.String("shard-addrs", "", "comma-separated remote shard engine ctl addresses; run as a routing gateway fronting them (shard i+1 = i-th address)")
		shardID   = fs.Int("shard-id", 0, "run as one standalone shard engine: this 1-based slot of a -shard-of partition (behind a -shard-addrs gateway)")
		shardOf   = fs.Int("shard-of", 0, "total shard count of the partition this engine is one slot of (requires -shard-id)")
		crossFrac = fs.Float64("cross-pool-frac", 0, "fraction of core-layer capacity reserved for cross-shard events (0 = default 0.25; sharded modes only)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *follow != "" && *walDir == "" {
		fmt.Fprintln(os.Stderr, "updated: -follow requires -wal-dir (the follower persists the replicated log)")
		return 2
	}
	if (*shardID != 0) != (*shardOf != 0) {
		fmt.Fprintln(os.Stderr, "updated: -shard-id and -shard-of must be set together")
		return 2
	}
	if *shardID != 0 && (*shards > 1 || *shardAddr != "") {
		fmt.Fprintln(os.Stderr, "updated: -shard-id is a standalone engine slot; it cannot combine with -shards or -shard-addrs")
		return 2
	}
	if *shards > 1 || *shardAddr != "" || *shardID != 0 {
		for name, set := range map[string]bool{
			"-follow":   *follow != "",
			"-span-out": *spanOut != "",
			"-tables":   *tables >= 0,
		} {
			if set {
				fmt.Fprintf(os.Stderr, "updated: %s is not supported in sharded mode\n", name)
				return 2
			}
		}
		if *shardID != 0 {
			return runShardEngine(stdout, stop, *addr, *telemetry, shard.WorldConfig{
				K: *k, Util: *util, Scheduler: *schedName, Alpha: *alpha, Seed: *seed,
				Watermark: *watermark, Shards: *shardOf, CrossPoolFrac: *crossFrac,
				WALDir: *walDir, WALSync: *walSync, CheckpointEvery: *walCkpt,
			}, *shardID)
		}
		if *shardAddr != "" {
			return runGateway(stdout, stop, *addr, *telemetry, *k, *crossFrac, strings.Split(*shardAddr, ","))
		}
		return runShardedCluster(stdout, stop, *addr, *telemetry, shard.WorldConfig{
			K: *k, Util: *util, Scheduler: *schedName, Alpha: *alpha, Seed: *seed,
			Watermark: *watermark, Shards: *shards, CrossPoolFrac: *crossFrac,
			WALDir: *walDir, WALSync: *walSync, CheckpointEvery: *walCkpt,
		})
	}

	scheduler, err := sched.New(*schedName, sched.WithAlpha(*alpha), sched.WithSeed(*seed))
	if err != nil {
		// The typed error lists every registered scheduler.
		fmt.Fprintf(os.Stderr, "updated: %v\n", err)
		return 2
	}

	// Open the WAL before building the world: whether it holds a
	// checkpoint decides whether the background fill runs (a checkpoint
	// restores its own flows; replay without one folds against the
	// freshly filled genesis network).
	var walLog *wal.Log
	if *walDir != "" {
		policy, err := wal.ParseSyncPolicy(*walSync)
		if err != nil {
			fmt.Fprintf(os.Stderr, "updated: %v\n", err)
			return 2
		}
		walLog, err = wal.Open(*walDir, wal.WithSync(policy))
		if err != nil {
			fmt.Fprintf(os.Stderr, "updated: wal: %v\n", err)
			return 1
		}
	}
	var meta *wal.Meta
	if walLog != nil {
		meta = &wal.Meta{
			Format:    wal.FormatVersion,
			Scheduler: scheduler.Name(),
			Seed:      *seed,
			K:         *k,
			Util:      *util,
			Watermark: *watermark,
			Tables:    *tables,
		}
	}

	// A follower handshakes before the world is built: if the leader
	// ships a bootstrap checkpoint it is installed into the empty log
	// now, so the `restoring` decision below sees it exactly as it
	// would a locally written checkpoint.
	var followCfg ctl.FollowerConfig
	var followSess *ctl.FollowerSession
	if *follow != "" {
		followCfg = ctl.FollowerConfig{
			Log:             walLog,
			Meta:            meta,
			LeaderAddr:      *follow,
			CheckpointEvery: *walCkpt,
			PromoteAfter:    *promote,
		}
		followSess, err = ctl.FollowerBootstrap(followCfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "updated: follow %s: %v\n", *follow, err)
			return 1
		}
	}

	ft, err := topology.NewFatTree(*k, topology.Gbps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "updated: %v\n", err)
		return 1
	}
	net := netstate.New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.NewRandomFit(*seed+7))
	if *tables >= 0 {
		if err := net.AttachDataPlane(rules.NewManager(ft.Graph(), *tables)); err != nil {
			fmt.Fprintf(os.Stderr, "updated: rule tables: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "updated: two-phase rule tables attached (capacity %d per switch)\n", *tables)
	}
	gen, err := trace.NewGenerator(*seed, trace.YahooLike{}, ft.Hosts())
	if err != nil {
		fmt.Fprintf(os.Stderr, "updated: %v\n", err)
		return 1
	}
	restoring := walLog != nil && walLog.Checkpoint() != nil
	if *util > 0 && !restoring {
		placed, err := trace.FillBackground(net, gen, *util, 0)
		if err != nil && !errors.Is(err, trace.ErrTargetUnreachable) {
			fmt.Fprintf(os.Stderr, "updated: background: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "updated: background %d flows, utilization %.3f\n", len(placed), net.Utilization())
	} else if restoring {
		fmt.Fprintf(stdout, "updated: background fill skipped, restoring from checkpoint\n")
	}

	planner := core.NewPlanner(migration.NewPlanner(net, 0), core.FailSkip)
	opts := []ctl.ServerOption{ctl.WithHighWatermark(*watermark)}
	if *spanOut != "" {
		f, err := os.Create(*spanOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "updated: span-out: %v\n", err)
			return 1
		}
		// Registered before the server exists, so it runs after srv.Close
		// below has drained the async span sink into the file.
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "updated: span-out close: %v\n", err)
			}
		}()
		opts = append(opts, ctl.WithSpanSink(obs.NewJSONLSink(f)))
		fmt.Fprintf(stdout, "updated: stage spans to %s\n", *spanOut)
	}
	var srv *ctl.Server
	switch {
	case followSess != nil:
		var rec *ctl.RecoveryInfo
		srv, rec, err = ctl.NewFollower(planner, scheduler, sim.Config{}, followCfg, followSess, opts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "updated: follower recovery: %v\n", err)
			return 1
		}
		if rec.Recovered {
			fmt.Fprintf(stdout, "updated: recovered from WAL: checkpoint seq %d, %d records replayed, last seq %d (%v)\n",
				rec.CheckpointSeq, rec.ReplayedRecords, rec.LastSeq, rec.Elapsed.Round(time.Millisecond))
		}
		fmt.Fprintf(stdout, "updated: wal in %s (sync=%s)\n", *walDir, *walSync)
		if *promote > 0 {
			fmt.Fprintf(stdout, "updated: following %s (auto-promote after %v)\n", *follow, *promote)
		} else {
			fmt.Fprintf(stdout, "updated: following %s (manual promotion only)\n", *follow)
		}
	case walLog != nil:
		if *maxFoll > 0 {
			opts = append(opts, ctl.WithReplication(ctl.ReplicationConfig{MaxFollowers: *maxFoll}))
		}
		var rec *ctl.RecoveryInfo
		srv, rec, err = ctl.NewServerWithWAL(planner, scheduler, sim.Config{},
			ctl.WALConfig{Log: walLog, Meta: meta, CheckpointEvery: *walCkpt},
			opts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "updated: wal recovery: %v\n", err)
			return 1
		}
		if rec.Recovered {
			fmt.Fprintf(stdout, "updated: recovered from WAL: checkpoint seq %d, %d records replayed, last seq %d (%v)\n",
				rec.CheckpointSeq, rec.ReplayedRecords, rec.LastSeq, rec.Elapsed.Round(time.Millisecond))
		}
		fmt.Fprintf(stdout, "updated: wal in %s (sync=%s)\n", *walDir, *walSync)
	default:
		srv = ctl.NewServer(planner, scheduler, sim.Config{}, opts...)
	}

	if *telemetry != "" {
		stopTelemetry, err := startTelemetry(stdout, *telemetry, obs.Handler(srv.Registry()))
		if err != nil {
			fmt.Fprintf(os.Stderr, "updated: telemetry: %v\n", err)
			return 1
		}
		defer stopTelemetry()
	}

	return serveCtl(stdout, stop, *addr, srv, func(l netpkg.Listener) {
		fmt.Fprintf(stdout, "updated: %s scheduler on %s (k=%d, %d hosts)\n",
			scheduler.Name(), l.Addr(), *k, ft.NumHosts())
	})
}

// runShardedCluster is the -shards N mode: one process hosting N
// pod-partitioned engines behind an in-process routing gateway that
// speaks the ordinary ctl protocol on addr. Telemetry serves the
// gateway's registry on /metrics and each engine's on
// /metrics/shard/<id>.
func runShardedCluster(stdout io.Writer, stop <-chan os.Signal, addr, telemetry string, cfg shard.WorldConfig) int {
	cl, err := shard.NewCluster(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "updated: %v\n", err)
		return 1
	}
	defer func() {
		if err := cl.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "updated: cluster close: %v\n", err)
		}
	}()
	gw, err := shard.NewGateway(cl.Part, cl.Ref.Graph(), cl.Cross, cl.Backends())
	if err != nil {
		fmt.Fprintf(os.Stderr, "updated: %v\n", err)
		return 1
	}

	if telemetry != "" {
		mux := http.NewServeMux()
		mux.Handle("/", obs.Handler(gw.Registry()))
		for _, w := range cl.Worlds {
			reg := w.Server.Registry()
			mux.HandleFunc(fmt.Sprintf("/metrics/shard/%d", w.ID), func(rw http.ResponseWriter, _ *http.Request) {
				rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
				reg.WritePrometheus(rw)
			})
		}
		stopTelemetry, err := startTelemetry(stdout, telemetry, mux)
		if err != nil {
			fmt.Fprintf(os.Stderr, "updated: telemetry: %v\n", err)
			return 1
		}
		defer stopTelemetry()
	}
	if cfg.WALDir != "" {
		fmt.Fprintf(stdout, "updated: per-shard wal under %s\n", cfg.WALDir)
	}
	return serveCtl(stdout, stop, addr, gw, func(l netpkg.Listener) {
		for _, w := range cl.Worlds {
			fmt.Fprintf(stdout, "updated: shard %d owns pods %v\n", w.ID, cl.Part.PodsOf(w.ID))
		}
		fmt.Fprintf(stdout, "updated: gateway for %d shards on %s (k=%d, %s scheduler)\n",
			len(cl.Worlds), l.Addr(), cfg.K, cfg.Scheduler)
	})
}

// runShardEngine is the -shard-id/-shard-of mode: one standalone
// engine owning a single slot of a pod partition, built exactly as the
// in-process cluster would build it (core capacity split, pod-local
// fill, strided event IDs, WAL bound to the slot), meant to sit behind
// a -shard-addrs gateway started with the same -k.
func runShardEngine(stdout io.Writer, stop <-chan os.Signal, addr, telemetry string, cfg shard.WorldConfig, id int) int {
	w, err := shard.NewShardWorld(cfg, id)
	if err != nil {
		fmt.Fprintf(os.Stderr, "updated: %v\n", err)
		return 1
	}
	if telemetry != "" {
		stopTelemetry, err := startTelemetry(stdout, telemetry, obs.Handler(w.Server.Registry()))
		if err != nil {
			fmt.Fprintf(os.Stderr, "updated: telemetry: %v\n", err)
			return 1
		}
		defer stopTelemetry()
	}
	if cfg.WALDir != "" {
		fmt.Fprintf(stdout, "updated: wal in %s/shard-%d (sync=%s)\n", cfg.WALDir, id, cfg.WALSync)
	}
	return serveCtl(stdout, stop, addr, w.Server, func(l netpkg.Listener) {
		fmt.Fprintf(stdout, "updated: engine shard %d of %d on %s, owns pods %v (k=%d, %s scheduler)\n",
			id, cfg.Shards, l.Addr(), w.Pods, cfg.K, cfg.Scheduler)
	})
}

// runGateway is the -shard-addrs mode: a routing gateway fronting
// already-running remote shard engines (each an `updated` started with
// matching world flags; shard i+1 is the i-th address).
func runGateway(stdout io.Writer, stop <-chan os.Signal, addr, telemetry string, k int, crossFrac float64, shardAddrs []string) int {
	ref, err := topology.NewFatTree(k, topology.Gbps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "updated: %v\n", err)
		return 1
	}
	part, err := shard.NewPartition(ref, len(shardAddrs))
	if err != nil {
		fmt.Fprintf(os.Stderr, "updated: %v\n", err)
		return 1
	}
	frac, err := shard.ResolveCrossPoolFrac(len(shardAddrs), crossFrac)
	if err != nil {
		fmt.Fprintf(os.Stderr, "updated: %v\n", err)
		return 1
	}

	backends := make([]ctl.Backend, len(shardAddrs))
	closeBackends := func() {
		for _, b := range backends {
			if b != nil {
				_ = b.Close()
			}
		}
	}
	for i, a := range shardAddrs {
		a = strings.TrimSpace(a)
		c, err := ctl.DialBinary(a)
		if err != nil {
			fmt.Fprintf(os.Stderr, "updated: shard %d (%s): %v\n", i+1, a, err)
			closeBackends()
			return 1
		}
		backends[i] = c
		feats, err := c.Features()
		if err != nil {
			fmt.Fprintf(os.Stderr, "updated: shard %d (%s): ping: %v\n", i+1, a, err)
			closeBackends()
			return 1
		}
		for _, f := range feats {
			if f == ctl.FeatureShardVerdicts {
				c.EnableShardInfo()
			}
		}
		// Identity check: an engine booted with -shard-id/-shard-of
		// advertises its slot in stats. Wiring slot 2's engine as the
		// first address would silently misroute every event, so a
		// declared identity must match its position; an engine with no
		// identity (plain `updated`) still works, but mints unstrided
		// IDs, so cross-shard status routing cannot find its events.
		st, err := c.Stats()
		if err != nil {
			fmt.Fprintf(os.Stderr, "updated: shard %d (%s): stats: %v\n", i+1, a, err)
			closeBackends()
			return 1
		}
		if st.ShardID != 0 && (st.ShardID != i+1 || st.Shards != len(shardAddrs)) {
			fmt.Fprintf(os.Stderr, "updated: shard %d (%s): engine identifies as shard %d of %d, want %d of %d — shard-addrs order must match engine slots\n",
				i+1, a, st.ShardID, st.Shards, i+1, len(shardAddrs))
			closeBackends()
			return 1
		}
		if st.ShardID == 0 && len(shardAddrs) > 1 {
			fmt.Fprintf(stdout, "updated: warning: shard %d engine at %s has no shard identity; its event IDs will not stride, so status lookups may miss (boot engines with -shard-id/-shard-of)\n", i+1, a)
		}
	}
	defer closeBackends()

	gw, err := shard.NewGateway(part, ref.Graph(), shard.CrossPoolFor(ref, part, frac), backends)
	if err != nil {
		fmt.Fprintf(os.Stderr, "updated: %v\n", err)
		return 1
	}
	if telemetry != "" {
		stopTelemetry, err := startTelemetry(stdout, telemetry, obs.Handler(gw.Registry()))
		if err != nil {
			fmt.Fprintf(os.Stderr, "updated: telemetry: %v\n", err)
			return 1
		}
		defer stopTelemetry()
	}
	return serveCtl(stdout, stop, addr, gw, func(l netpkg.Listener) {
		fmt.Fprintf(stdout, "updated: gateway for %d remote shards on %s (k=%d)\n",
			len(shardAddrs), l.Addr(), k)
	})
}

// ctlService is the serve surface shared by the engine server and the
// shard gateway.
type ctlService interface {
	Serve(netpkg.Listener) error
	Close() error
}

// startTelemetry binds addr synchronously — so a bad address fails at
// startup, not in a goroutine after the daemon already reported itself
// healthy — and serves h until the returned shutdown func runs.
func startTelemetry(stdout io.Writer, addr string, h http.Handler) (func(), error) {
	l, err := netpkg.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	telemetrySrv := &http.Server{Handler: h}
	go func() {
		if err := telemetrySrv.Serve(l); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "updated: telemetry: %v\n", err)
		}
	}()
	fmt.Fprintf(stdout, "updated: telemetry on http://%s/metrics\n", l.Addr())
	return func() {
		if err := telemetrySrv.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "updated: telemetry close: %v\n", err)
		}
	}, nil
}

// serveCtl binds addr before serving — so a taken address fails fast
// and the printed address is the real one even for ":0" — then serves
// s until a stop signal or a serve error.
func serveCtl(stdout io.Writer, stop <-chan os.Signal, addr string, s ctlService, banner func(l netpkg.Listener)) int {
	l, err := netpkg.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "updated: listen: %v\n", err)
		return 1
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()
	fmt.Fprintf(stdout, "updated: listening on %s\n", l.Addr())
	if banner != nil {
		banner(l)
	}

	select {
	case sig := <-stop:
		fmt.Fprintf(stdout, "updated: %v, shutting down\n", sig)
		if err := s.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "updated: close: %v\n", err)
			return 1
		}
		if err := <-serveErr; err != nil && !errors.Is(err, ctl.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "updated: %v\n", err)
			return 1
		}
		return 0
	case err := <-serveErr:
		if err != nil && !errors.Is(err, ctl.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "updated: %v\n", err)
			return 1
		}
		return 0
	}
}
