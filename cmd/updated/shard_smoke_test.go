package main

import (
	"bufio"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"netupdate/internal/ctl"
	"netupdate/internal/topology"
)

// bootDaemon starts run() with args on a pipe, parses the printed
// addresses, and returns (ctl addr, telemetry URL, stop chan, done
// chan). The pipe keeps draining after the addresses are seen.
func bootDaemon(t *testing.T, args []string) (string, string, chan os.Signal, chan int) {
	t.Helper()
	pr, pw := io.Pipe()
	stop := make(chan os.Signal, 1)
	done := make(chan int, 1)
	go func() {
		code := run(args, pw, stop)
		_ = pw.Close()
		done <- code
	}()

	var addr, telemetryURL string
	var startup []string
	scanner := bufio.NewScanner(pr)
	for scanner.Scan() {
		line := scanner.Text()
		startup = append(startup, line)
		if s, ok := strings.CutPrefix(line, "updated: telemetry on "); ok {
			telemetryURL = s
		}
		if s, ok := strings.CutPrefix(line, "updated: listening on "); ok {
			addr = s
			break
		}
	}
	if addr == "" {
		t.Fatalf("daemon never reported its address; startup output:\n%s", strings.Join(startup, "\n"))
	}
	go func() { _, _ = io.Copy(io.Discard, pr) }()
	return addr, telemetryURL, stop, done
}

func shutdownDaemon(t *testing.T, stop chan os.Signal, done chan int) {
	t.Helper()
	stop <- os.Interrupt
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("daemon exit = %d, want 0", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down within 10s")
	}
}

// TestDaemonShardedSmoke boots the daemon in -shards 2 mode, submits
// intra- and cross-pod events through an ordinary binary client, checks
// the aggregated stats and per-shard telemetry endpoints, and shuts
// down cleanly.
func TestDaemonShardedSmoke(t *testing.T) {
	addr, telemetryURL, stop, done := bootDaemon(t, []string{
		"-addr", "127.0.0.1:0",
		"-k", "4",
		"-util", "0.2",
		"-scheduler", "p-lmtf",
		"-shards", "2",
		"-telemetry-addr", "127.0.0.1:0",
	})
	if telemetryURL == "" {
		t.Fatal("daemon never reported its telemetry address")
	}

	client, err := ctl.DialBinary(addr)
	if err != nil {
		t.Fatalf("dial gateway: %v", err)
	}
	defer client.Close()
	feats, err := client.Features()
	if err != nil {
		t.Fatal(err)
	}
	hasShard := false
	for _, f := range feats {
		if f == ctl.FeatureShardVerdicts {
			hasShard = true
		}
	}
	if !hasShard {
		t.Fatalf("gateway features = %v, want %s", feats, ctl.FeatureShardVerdicts)
	}
	client.EnableShardInfo()

	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	// One event per pod (pods 0,1 → shard 1; pods 2,3 → shard 2) plus a
	// cross-pod event spanning both shards.
	specs := make([]ctl.EventSpec, 0, 5)
	for pod := 0; pod < 4; pod++ {
		specs = append(specs, ctl.EventSpec{Kind: "smoke", Flows: []ctl.FlowSpec{
			{Src: int(ft.Host(pod, 0, 0)), Dst: int(ft.Host(pod, 0, 1)), DemandBps: 1e6, SizeBytes: 1e4},
		}})
	}
	specs = append(specs, ctl.EventSpec{Kind: "smoke-cross", Flows: []ctl.FlowSpec{
		{Src: int(ft.Host(0, 0, 0)), Dst: int(ft.Host(3, 0, 0)), DemandBps: 1e6, SizeBytes: 1e4},
	}})
	verdicts, _, err := client.SubmitBatch(specs)
	if err != nil {
		t.Fatalf("submit batch: %v", err)
	}
	wantShards := []int{1, 1, 2, 2, 1} // cross event homes on its lowest touched shard
	for i, v := range verdicts {
		if !v.OK {
			t.Fatalf("verdict %d rejected: %s", i, v.Error)
		}
		if v.Shard != wantShards[i] {
			t.Errorf("event %d routed to shard %d, want %d", i, v.Shard, wantShards[i])
		}
		if ((v.EventID-1)%2)+1 != int64(v.Shard) {
			t.Errorf("event %d ID %d off the shard-%d lattice", i, v.EventID, v.Shard)
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := client.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.EventsDone >= 5 {
			if st.Shards != 2 || st.ShardID != 0 {
				t.Errorf("aggregated stats shards/id = %d/%d, want 2/0", st.Shards, st.ShardID)
			}
			if st.CrossEvents != 1 || st.CrossRejected != 0 {
				t.Errorf("cross events/rejected = %d/%d, want 1/0", st.CrossEvents, st.CrossRejected)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("events not done within 10s: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Gateway registry on /metrics, engine registries on /metrics/shard/<id>.
	scrape := func(url string) string {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("scrape %s: %v", url, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("scrape %s: status %d, err %v", url, resp.StatusCode, err)
		}
		return string(body)
	}
	if body := scrape(telemetryURL); !strings.Contains(body, "netupdate_gateway_routed_events_total 5") {
		t.Errorf("gateway /metrics missing routed counter; body:\n%.500s", body)
	}
	base := strings.TrimSuffix(telemetryURL, "/metrics")
	for shardID := 1; shardID <= 2; shardID++ {
		body := scrape(base + "/metrics/shard/" + string(rune('0'+shardID)))
		if !strings.Contains(body, "netupdate_ingest_accepted_total") {
			t.Errorf("shard %d /metrics missing engine counters; body:\n%.300s", shardID, body)
		}
	}

	shutdownDaemon(t, stop, done)
}

// TestDaemonRemoteGateway boots two engine daemons and one -shard-addrs
// gateway fronting them, and drives a batch through the gateway.
func TestDaemonRemoteGateway(t *testing.T) {
	engineArgs := func() []string {
		return []string{
			"-addr", "127.0.0.1:0", "-k", "4", "-util", "0", "-scheduler", "fifo",
		}
	}
	addr1, _, stop1, done1 := bootDaemon(t, engineArgs())
	defer shutdownDaemon(t, stop1, done1)
	addr2, _, stop2, done2 := bootDaemon(t, engineArgs())
	defer shutdownDaemon(t, stop2, done2)

	gwAddr, _, stopGW, doneGW := bootDaemon(t, []string{
		"-addr", "127.0.0.1:0", "-k", "4",
		"-shard-addrs", addr1 + "," + addr2,
	})

	client, err := ctl.DialBinary(gwAddr)
	if err != nil {
		t.Fatalf("dial gateway: %v", err)
	}
	defer client.Close()
	client.EnableShardInfo()

	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	verdicts, _, err := client.SubmitBatch([]ctl.EventSpec{
		{Kind: "remote", Flows: []ctl.FlowSpec{{Src: int(ft.Host(1, 0, 0)), Dst: int(ft.Host(1, 0, 1)), DemandBps: 1e6, SizeBytes: 1e4}}},
		{Kind: "remote", Flows: []ctl.FlowSpec{{Src: int(ft.Host(3, 0, 0)), Dst: int(ft.Host(3, 0, 1)), DemandBps: 1e6, SizeBytes: 1e4}}},
	})
	if err != nil {
		t.Fatalf("submit batch: %v", err)
	}
	for i, want := range []int{1, 2} {
		if !verdicts[i].OK || verdicts[i].Shard != want {
			t.Errorf("verdict %d = %+v, want OK on shard %d", i, verdicts[i], want)
		}
	}
	// The remote engines were not booted with shard identities, so their
	// IDs both start at 1; the gateway stamps routing shards regardless.
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards != 2 {
		t.Errorf("aggregated stats shards = %d, want 2", st.Shards)
	}

	shutdownDaemon(t, stopGW, doneGW)
}

// TestDaemonRemoteGatewayStridedEngines boots two engines as explicit
// partition slots (-shard-id/-shard-of) behind a gateway, and checks
// what identity-less engines cannot give: strided globally-unique
// event IDs and cross-shard status routing through the gateway.
func TestDaemonRemoteGatewayStridedEngines(t *testing.T) {
	slotArgs := func(id int) []string {
		return []string{
			"-addr", "127.0.0.1:0", "-k", "4", "-util", "0", "-scheduler", "fifo",
			"-shard-id", string(rune('0' + id)), "-shard-of", "2",
		}
	}
	addr1, _, stop1, done1 := bootDaemon(t, slotArgs(1))
	defer shutdownDaemon(t, stop1, done1)
	addr2, _, stop2, done2 := bootDaemon(t, slotArgs(2))
	defer shutdownDaemon(t, stop2, done2)

	// Wiring slot 2's engine as the first address must be refused at
	// boot: the gateway probes each engine's declared identity.
	if code := run([]string{"-addr", "127.0.0.1:0", "-k", "4",
		"-shard-addrs", addr2 + "," + addr1}, io.Discard, make(chan os.Signal)); code != 1 {
		t.Fatalf("swapped shard-addrs: run = %d, want 1", code)
	}

	gwAddr, _, stopGW, doneGW := bootDaemon(t, []string{
		"-addr", "127.0.0.1:0", "-k", "4",
		"-shard-addrs", addr1 + "," + addr2,
	})
	defer shutdownDaemon(t, stopGW, doneGW)

	client, err := ctl.DialBinary(gwAddr)
	if err != nil {
		t.Fatalf("dial gateway: %v", err)
	}
	defer client.Close()
	client.EnableShardInfo()

	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	flow := func(pod int) []ctl.FlowSpec {
		return []ctl.FlowSpec{{Src: int(ft.Host(pod, 0, 0)), Dst: int(ft.Host(pod, 0, 1)), DemandBps: 1e6, SizeBytes: 1e4}}
	}
	verdicts, _, err := client.SubmitBatch([]ctl.EventSpec{
		{Kind: "strided", Flows: flow(0)}, // shard 1
		{Kind: "strided", Flows: flow(2)}, // shard 2
		{Kind: "strided", Flows: flow(1)}, // shard 1
		{Kind: "strided", Flows: flow(3)}, // shard 2
	})
	if err != nil {
		t.Fatalf("submit batch: %v", err)
	}
	wantIDs := []int64{1, 2, 3, 4} // slot s mints s, s+2, ...
	wantShards := []int{1, 2, 1, 2}
	for i, v := range verdicts {
		if !v.OK || v.EventID != wantIDs[i] || v.Shard != wantShards[i] {
			t.Errorf("verdict %d = %+v, want OK id %d on shard %d", i, v, wantIDs[i], wantShards[i])
		}
		// The stride is the routing table: every ID must resolve
		// through the gateway, whichever engine minted it.
		if _, err := client.Status(v.EventID); err != nil {
			t.Errorf("status %d through gateway: %v", v.EventID, err)
		}
	}
}

// TestDaemonShardedFlagConflicts: follower, span, and rule-table modes
// are engine-only.
func TestDaemonShardedFlagConflicts(t *testing.T) {
	stop := make(chan os.Signal)
	for _, args := range [][]string{
		{"-shards", "2", "-follow", "x:1", "-wal-dir", t.TempDir()},
		{"-shards", "2", "-span-out", "/tmp/x.jsonl"},
		{"-shards", "2", "-tables", "128"},
		{"-shard-addrs", "x:1,y:2", "-span-out", "/tmp/x.jsonl"},
	} {
		if code := run(args, io.Discard, stop); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}
