package main

import (
	"bufio"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"netupdate/internal/ctl"
	"netupdate/internal/obs"
	"netupdate/internal/topology"
)

// TestCrashRecoverySIGKILL is the out-of-process half of the recovery
// harness: it builds the real daemon binary, runs it with a WAL, kills
// it with SIGKILL mid-soak, restarts it on the same directory, finishes
// the workload, and requires the result to converge with an identical
// daemon that never crashed — same stats, results, snapshot, /metrics
// counters and trace suffix.
func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real binary; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "updated")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	work := crashWorkload(ft, 11, 6, 3)
	const killAfter = 3 // chunks played before SIGKILL

	// Reference daemon: same flags, own WAL directory, never killed.
	refDir := filepath.Join(t.TempDir(), "wal-ref")
	refProc, refClient, _ := startDaemonProc(t, bin, refDir)
	defer stopDaemonProc(t, refProc)
	for _, ch := range work {
		playCrashChunk(t, refClient, ch)
	}

	// Victim daemon: play a prefix, then kill -9 at a quiesced boundary
	// (every submission acked, queue drained) so the exact committed
	// history is known.
	walDir := filepath.Join(t.TempDir(), "wal")
	victim, victimClient, _ := startDaemonProc(t, bin, walDir)
	for _, ch := range work[:killAfter] {
		playCrashChunk(t, victimClient, ch)
	}
	if err := victim.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	_ = victim.Wait()
	victimClient.Close()

	// Restart on the same WAL directory and finish the workload.
	revived, revivedClient, startup := startDaemonProc(t, bin, walDir)
	defer stopDaemonProc(t, revived)
	recovered := false
	for _, line := range startup {
		if strings.HasPrefix(line, "updated: recovered from WAL:") {
			recovered = true
		}
	}
	if !recovered {
		t.Fatalf("restarted daemon never reported a recovery; startup:\n%s", strings.Join(startup, "\n"))
	}
	for _, ch := range work[killAfter:] {
		playCrashChunk(t, revivedClient, ch)
	}

	compareDaemons(t, refClient, revivedClient)
}

// startDaemonProc launches the built daemon with a WAL directory and
// returns a connected client plus the captured startup lines. Extra
// flags (e.g. -follow for a warm follower) are appended to the shared
// world flags, which every replica of one deterministic world must use.
func startDaemonProc(t *testing.T, bin, walDir string, extra ...string) (*exec.Cmd, *ctl.Client, []string) {
	t.Helper()
	args := []string{
		"-addr", "127.0.0.1:0",
		"-k", "4",
		"-util", "0.3",
		"-scheduler", "p-lmtf",
		"-seed", "1",
		"-telemetry-addr", "127.0.0.1:0",
		"-wal-dir", walDir,
		"-wal-sync", "group",
		"-wal-checkpoint-every", "8",
	}
	cmd := exec.Command(bin, append(args, extra...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	})

	var addr, metricsURL string
	var startup []string
	scanner := bufio.NewScanner(stdout)
	for scanner.Scan() {
		line := scanner.Text()
		startup = append(startup, line)
		if s, ok := strings.CutPrefix(line, "updated: telemetry on "); ok {
			metricsURL = s
		}
		if s, ok := strings.CutPrefix(line, "updated: listening on "); ok {
			addr = s
			break
		}
	}
	if addr == "" || metricsURL == "" {
		t.Fatalf("daemon never reported its addresses; startup:\n%s", strings.Join(startup, "\n"))
	}
	go func() { _, _ = io.Copy(io.Discard, stdout) }()

	client, err := ctl.Dial(addr)
	if err != nil {
		t.Fatalf("dial daemon: %v", err)
	}
	t.Cleanup(func() { _ = client.Close() })
	// Stash the metrics URL on the client's behalf via a map keyed by
	// client; simpler: remember it globally per test through closure.
	daemonMetricsURL[client] = metricsURL
	return cmd, client, startup
}

// daemonMetricsURL maps each test client to its daemon's /metrics URL.
var daemonMetricsURL = map[*ctl.Client]string{}

func stopDaemonProc(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	if cmd.ProcessState != nil {
		return
	}
	_ = cmd.Process.Kill()
	_ = cmd.Wait()
}

// crashChunk mirrors the in-process recovery workload: a batch of
// events waited to completion, then an optional fault at the quiesced
// boundary.
type crashChunk struct {
	specs []ctl.EventSpec
	fault *ctl.FaultSpec
}

func crashWorkload(ft *topology.FatTree, seed int64, chunks, perChunk int) []crashChunk {
	rng := rand.New(rand.NewSource(seed))
	hosts := ft.Hosts()
	victimLink := rng.Intn(ft.Graph().NumLinks())
	out := make([]crashChunk, chunks)
	for c := range out {
		for e := 0; e < perChunk; e++ {
			spec := ctl.EventSpec{Kind: "sigkill-test"}
			nf := 1 + rng.Intn(3)
			for f := 0; f < nf; f++ {
				src := hosts[rng.Intn(len(hosts))]
				dst := hosts[rng.Intn(len(hosts))]
				for dst == src {
					dst = hosts[rng.Intn(len(hosts))]
				}
				spec.Flows = append(spec.Flows, ctl.FlowSpec{
					Src: int(src), Dst: int(dst),
					DemandBps: int64(10+rng.Intn(90)) * 1e6,
				})
			}
			out[c].specs = append(out[c].specs, spec)
		}
		switch c {
		case 1:
			out[c].fault = &ctl.FaultSpec{Action: "install-timeout", Times: 1}
		case 2:
			out[c].fault = &ctl.FaultSpec{Action: "link-down", Link: victimLink}
		case 4:
			out[c].fault = &ctl.FaultSpec{Action: "link-up", Link: victimLink}
		}
	}
	return out
}

func playCrashChunk(t *testing.T, client *ctl.Client, ch crashChunk) {
	t.Helper()
	ids, err := client.SubmitBatchRetry(ch.specs, 5)
	if err != nil {
		t.Fatalf("SubmitBatchRetry: %v", err)
	}
	for _, id := range ids {
		if _, err := client.WaitDone(id, 20*time.Second); err != nil {
			t.Fatalf("WaitDone(%d): %v", id, err)
		}
	}
	if ch.fault != nil {
		res, err := client.Fault(*ch.fault)
		if err != nil {
			t.Fatalf("Fault(%s): %v", ch.fault.Action, err)
		}
		if res.RepairEventID != 0 {
			if _, err := client.WaitDone(res.RepairEventID, 20*time.Second); err != nil {
				t.Fatalf("WaitDone(repair %d): %v", res.RepairEventID, err)
			}
		}
	}
}

// compareDaemons requires the recovered daemon to have converged with
// the never-crashed reference across every externally visible surface.
func compareDaemons(t *testing.T, ref, got *ctl.Client) {
	t.Helper()
	refStats := normalizedStats(t, ref)
	gotStats := normalizedStats(t, got)
	if !reflect.DeepEqual(refStats, gotStats) {
		t.Errorf("stats diverged:\nreference: %+v\nrecovered: %+v", refStats, gotStats)
	}

	refResults, err := ref.Results()
	if err != nil {
		t.Fatal(err)
	}
	gotResults, err := got.Results()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(refResults, gotResults) {
		t.Errorf("results diverged: reference %d events, recovered %d", len(refResults), len(gotResults))
	}

	refSnap, err := ref.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	gotSnap, err := got.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	refJSON, _ := json.Marshal(refSnap)
	gotJSON, _ := json.Marshal(gotSnap)
	if string(refJSON) != string(gotJSON) {
		t.Errorf("network snapshots diverged (%d vs %d bytes)", len(refJSON), len(gotJSON))
	}

	// Deterministic /metrics counters must match line for line.
	refMetrics := scrapeMetrics(t, daemonMetricsURL[ref])
	gotMetrics := scrapeMetrics(t, daemonMetricsURL[got])
	for name, v := range refMetrics {
		if gv, ok := gotMetrics[name]; !ok || gv != v {
			t.Errorf("metric %s: reference %q, recovered %q", name, v, gv)
		}
	}
	for name := range gotMetrics {
		if _, ok := refMetrics[name]; !ok {
			t.Errorf("metric %s only reported by the recovered daemon", name)
		}
	}

	// The recovered trace must be a suffix of the reference trace,
	// modulo probe-cache warmth (a recovered engine probes cold).
	refTrace, err := ref.Trace(0)
	if err != nil {
		t.Fatal(err)
	}
	gotTrace, err := got.Trace(0)
	if err != nil {
		t.Fatal(err)
	}
	stripCacheHits(refTrace)
	stripCacheHits(gotTrace)
	if len(gotTrace) == 0 || len(gotTrace) > len(refTrace) {
		t.Fatalf("recovered trace has %d records, reference %d", len(gotTrace), len(refTrace))
	}
	tail := refTrace[len(refTrace)-len(gotTrace):]
	for i := range gotTrace {
		want, _ := json.Marshal(tail[i])
		gotRec, _ := json.Marshal(gotTrace[i])
		if string(want) != string(gotRec) {
			t.Fatalf("trace record %d/%d diverged:\nreference: %s\nrecovered: %s", i, len(gotTrace), want, gotRec)
		}
	}
}

func normalizedStats(t *testing.T, client *ctl.Client) ctl.Stats {
	t.Helper()
	st, err := client.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	st.ProbeCacheHits, st.ProbeCacheMisses, st.ProbeHitRate = 0, 0, 0
	st.ProbeColdPlans, st.ProbeIncrementalReplans = 0, 0
	st.CodecV2Conns, st.FramesV1, st.FramesV2 = 0, 0, 0
	st.WALAppends, st.WALCheckpoints, st.WALCheckpointSeq = 0, 0, 0
	st.WALReplayed, st.WALRecoveryMs = 0, 0
	// Wall-clock latency is process-local: the recovered daemon re-times
	// only replayed work, so these never match across processes.
	st.LatencyE2EP50Ns, st.LatencyE2EP95Ns, st.LatencyE2EP99Ns, st.LatencyE2EP999Ns = 0, 0, 0, 0
	st.LatencyQueueP50Ns, st.LatencyQueueP99Ns = 0, 0
	st.LatencyRoundsP50Ns, st.LatencyRoundsP99Ns = 0, 0
	st.SpansDropped = 0
	st.WALFsyncP50Ns, st.WALFsyncP99Ns, st.WALFsyncCount = 0, 0, 0
	// Replication state is process history, not folded state: a promoted
	// follower reports a later term and apply counters the reference
	// leader never accrues.
	st.ReplRole, st.ReplTerm = "", 0
	st.ReplFollowers, st.ReplSynced, st.ReplLagRecords = 0, 0, 0
	st.ReplRecordsSent, st.ReplRecordsApplied, st.ReplFollowerDrops = 0, 0, 0
	st.ReplFailoverMs = 0
	return st
}

// scrapeMetrics fetches /metrics and keeps the deterministic counters:
// everything under netupdate_ except WAL bookkeeping, probe-cache
// warmth and per-connection codec traffic.
func scrapeMetrics(t *testing.T, url string) map[string]string {
	t.Helper()
	// The daemon prints the full URL ("updated: telemetry on http://...").
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("scrape %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]string{}
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, "netupdate_") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "netupdate_wal_"),
			strings.HasPrefix(line, "netupdate_probe_"),
			strings.HasPrefix(line, "netupdate_ingest_codec"),
			strings.HasPrefix(line, "netupdate_ingest_frames"),
			// Replication role/term/stream counters are process history
			// (see normalizedStats).
			strings.HasPrefix(line, "netupdate_repl_"),
			// Wall-clock latency histograms: process-local, like the
			// fsync timings above.
			strings.HasPrefix(line, "netupdate_latency_"):
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		out[name] = value
	}
	return out
}

func stripCacheHits(recs []obs.Record) {
	for i := range recs {
		if r := recs[i].Round; r != nil {
			for j := range r.Candidates {
				r.Candidates[j].CacheHit = false
			}
			for j := range r.CoScheduled {
				r.CoScheduled[j].Probe.CacheHit = false
			}
		}
	}
}
