package main

// Offline span-file analysis: `updatectl trace report <spans.jsonl>`
// renders per-stage latency tables, the top-N slowest events with their
// stage waterfalls, and a fairness view over end-to-end latency —
// without a server, from the JSONL span channel a controller wrote via
// -span-out (cmd/updated) or -spans (cmd/loadgen).

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"netupdate/internal/obs"
)

// traceReport implements `trace report <file> [-top n]`.
func traceReport(args []string, stdout io.Writer) int {
	var file string
	var flagArgs []string
	for i, a := range args {
		if strings.HasPrefix(a, "-") {
			flagArgs = args[i:]
			break
		}
		if file != "" {
			fmt.Fprintf(os.Stderr, "updatectl: trace report takes one span file, got %q and %q\n", file, a)
			return 2
		}
		file = a
	}
	fs := flag.NewFlagSet("trace report", flag.ContinueOnError)
	top := fs.Int("top", 10, "how many slowest events to list with waterfalls")
	if err := fs.Parse(flagArgs); err != nil {
		return 2
	}
	if file == "" {
		fmt.Fprintln(os.Stderr, "updatectl: trace report needs a span file (JSONL, written with -spans/-span-out)")
		return 2
	}
	f, err := os.Open(file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "updatectl: %v\n", err)
		return 1
	}
	defer f.Close()

	spans, total, err := readSpans(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "updatectl: %s: %v\n", file, err)
		return 1
	}
	if total == 0 {
		fmt.Fprintf(os.Stderr, "updatectl: %s holds no stage records (was the run started with spans enabled?)\n", file)
		return 1
	}
	renderReport(stdout, spans, total, *top)
	return 0
}

// eventSpan groups one event's stage records in file (emission) order.
type eventSpan struct {
	event  int64
	stages []*obs.StageRecord
}

// complete returns the completion record, or nil for an open span.
func (s *eventSpan) complete() *obs.StageRecord {
	if n := len(s.stages); n > 0 && s.stages[n-1].Stage == obs.StageComplete {
		return s.stages[n-1]
	}
	return nil
}

// readSpans parses the stage records of a span JSONL stream, grouped by
// event, preserving first-seen event order. Non-stage records (a mixed
// sink) are skipped. Returns the groups and the total stage count.
func readSpans(r io.Reader) ([]*eventSpan, int, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<24)
	byEvent := map[int64]*eventSpan{}
	var order []*eventSpan
	total := 0
	for scanner.Scan() {
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec obs.Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, 0, fmt.Errorf("bad span line: %w", err)
		}
		if rec.Kind != obs.KindStage || rec.Stage == nil {
			continue
		}
		total++
		st := rec.Stage
		sp := byEvent[st.Event]
		if sp == nil {
			sp = &eventSpan{event: st.Event}
			byEvent[st.Event] = sp
			order = append(order, sp)
		}
		sp.stages = append(sp.stages, st)
	}
	return order, total, scanner.Err()
}

// pctl is the nearest-rank percentile of a sorted sample (0 if empty).
func pctl(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func fmtNs(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

// renderReport prints the per-stage latency tables, the top-N slowest
// waterfalls and the fairness view.
func renderReport(w io.Writer, spans []*eventSpan, total, top int) {
	completed := 0
	for _, sp := range spans {
		if sp.complete() != nil {
			completed++
		}
	}
	fmt.Fprintf(w, "spans: %d stage records, %d events, %d completed\n\n", total, len(spans), completed)

	// Per-stage transition latency: each stage record's SinceNs is the
	// wall time since the span's previous stage.
	stageRows := []struct{ name, label string }{
		{obs.StageIngest, "submit → ingest"},
		{obs.StageAdmit, "ingest → admit"},
		{obs.StageWALCommit, "admit → wal_commit"},
		{obs.StageExec, "queue wait → exec"},
		{obs.StageComplete, "exec → complete"},
	}
	fmt.Fprintf(w, "stage latency (wall clock)\n")
	fmt.Fprintf(w, "  %-20s %7s %12s %12s %12s %12s\n", "transition", "count", "p50", "p95", "p99", "max")
	for _, row := range stageRows {
		var samples []int64
		for _, sp := range spans {
			for _, st := range sp.stages {
				if st.Stage == row.name && st.SinceNs > 0 {
					samples = append(samples, st.SinceNs)
				}
			}
		}
		if len(samples) == 0 {
			continue
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		fmt.Fprintf(w, "  %-20s %7d %12s %12s %12s %12s\n", row.label, len(samples),
			fmtNs(pctl(samples, 50)), fmtNs(pctl(samples, 95)), fmtNs(pctl(samples, 99)),
			fmtNs(samples[len(samples)-1]))
	}

	// Overload breakdown and end-to-end, from completion summaries.
	var e2e, queue, rounds []int64
	var done []*eventSpan
	for _, sp := range spans {
		c := sp.complete()
		if c == nil {
			continue
		}
		done = append(done, sp)
		if c.E2ENs > 0 {
			e2e = append(e2e, c.E2ENs)
		}
		if c.QueueNs > 0 {
			queue = append(queue, c.QueueNs)
		}
		if c.RoundsNs > 0 {
			rounds = append(rounds, c.RoundsNs)
		}
	}
	fmt.Fprintf(w, "\nend-to-end (submit/ingest → complete)\n")
	fmt.Fprintf(w, "  %-20s %7s %12s %12s %12s %12s\n", "series", "count", "p50", "p95", "p99", "max")
	for _, s := range []struct {
		label   string
		samples []int64
	}{{"e2e", e2e}, {"time in queue", queue}, {"time in rounds", rounds}} {
		if len(s.samples) == 0 {
			continue
		}
		sort.Slice(s.samples, func(i, j int) bool { return s.samples[i] < s.samples[j] })
		fmt.Fprintf(w, "  %-20s %7d %12s %12s %12s %12s\n", s.label, len(s.samples),
			fmtNs(pctl(s.samples, 50)), fmtNs(pctl(s.samples, 95)), fmtNs(pctl(s.samples, 99)),
			fmtNs(s.samples[len(s.samples)-1]))
	}

	// Top-N slowest waterfalls.
	sort.Slice(done, func(i, j int) bool {
		return done[i].complete().E2ENs > done[j].complete().E2ENs
	})
	if top > len(done) {
		top = len(done)
	}
	if top > 0 {
		fmt.Fprintf(w, "\nslowest %d events\n", top)
	}
	for _, sp := range done[:top] {
		c := sp.complete()
		fmt.Fprintf(w, "  event %d (origin %d, trace %d): e2e %s, %d probes, %d flows",
			sp.event, c.Origin, c.TraceID, fmtNs(c.E2ENs), c.Probes, c.Flows)
		if c.Failed > 0 {
			fmt.Fprintf(w, ", %d failed", c.Failed)
		}
		if c.Retries > 0 {
			fmt.Fprintf(w, ", %d retries", c.Retries)
		}
		if c.RolledBack {
			fmt.Fprintf(w, ", rolled back")
		}
		fmt.Fprintln(w)
		start := int64(0)
		for _, st := range sp.stages {
			if st.WallNs > 0 {
				start = st.WallNs
				break
			}
		}
		probes := 0
		for _, st := range sp.stages {
			if st.Stage == obs.StageProbed {
				probes++
				continue
			}
			var off string
			if st.WallNs > 0 && start > 0 {
				off = fmt.Sprintf("+%s", fmtNs(st.WallNs-start))
			}
			line := fmt.Sprintf("    %-12s %10s", st.Stage, off)
			if st.SinceNs > 0 {
				line += fmt.Sprintf("  (%s since previous)", fmtNs(st.SinceNs))
			}
			if st.Round > 0 {
				line += fmt.Sprintf("  round %d", st.Round)
			}
			fmt.Fprintln(w, line)
		}
		if probes > 0 {
			fmt.Fprintf(w, "    (probed in %d rounds)\n", probes)
		}
	}

	// Fairness over end-to-end latency: how evenly completions shared
	// the pipeline. Jain's index is 1.0 when every event saw the same
	// latency, 1/n when one event ate everything.
	if len(e2e) > 0 {
		var sum, sumSq float64
		for _, v := range e2e {
			f := float64(v)
			sum += f
			sumSq += f * f
		}
		n := float64(len(e2e))
		jain := 0.0
		if sumSq > 0 {
			jain = sum * sum / (n * sumSq)
		}
		minV, maxV := e2e[0], e2e[len(e2e)-1]
		spread := 0.0
		if minV > 0 {
			spread = float64(maxV) / float64(minV)
		}
		fmt.Fprintf(w, "\nfairness (e2e latency across %d completed events)\n", len(e2e))
		fmt.Fprintf(w, "  min %s, mean %s, p50 %s, p95 %s, max %s\n",
			fmtNs(minV), fmtNs(int64(sum/n)), fmtNs(pctl(e2e, 50)), fmtNs(pctl(e2e, 95)), fmtNs(maxV))
		fmt.Fprintf(w, "  jain index %.4f, max/min spread %.2fx\n", jain, spread)
	}
}
