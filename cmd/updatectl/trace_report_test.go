package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netupdate/internal/obs"
)

// writeSpanFile writes a synthetic two-event span file: event 1 completes
// with a full waterfall, event 2 stays open at exec.
func writeSpanFile(t *testing.T) string {
	t.Helper()
	stage := func(event int64, stage string, wall, since int64, extra func(*obs.StageRecord)) obs.Record {
		st := &obs.StageRecord{
			TraceID: obs.TraceID(event, 7), Event: event, Origin: 7,
			Stage: stage, WallNs: wall, SinceNs: since,
		}
		if extra != nil {
			extra(st)
		}
		return obs.Record{Kind: obs.KindStage, VT: 0, Stage: st}
	}
	base := int64(1_722_400_000_000_000_000)
	records := []obs.Record{
		stage(1, obs.StageSubmit, base, 0, nil),
		stage(1, obs.StageIngest, base+1000, 1000, nil),
		stage(1, obs.StageAdmit, base+3000, 2000, nil),
		stage(1, obs.StageWALCommit, base+4000, 1000, nil),
		stage(1, obs.StageProbed, base+5000, 0, func(st *obs.StageRecord) { st.Round = 1 }),
		stage(1, obs.StageExec, base+9000, 6000, func(st *obs.StageRecord) { st.Round = 2 }),
		stage(1, obs.StageComplete, base+20000, 11000, func(st *obs.StageRecord) {
			st.Round = 2
			st.QueueNs = 6000
			st.RoundsNs = 11000
			st.E2ENs = 20000
			st.Probes = 1
			st.Flows = 2
		}),
		stage(2, obs.StageIngest, base+500, 0, nil),
		stage(2, obs.StageAdmit, base+1500, 1000, nil),
		stage(2, obs.StageExec, base+2500, 1000, func(st *obs.StageRecord) { st.Round = 1 }),
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range records {
		if err := enc.Encode(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTraceReport(t *testing.T) {
	path := writeSpanFile(t)
	var out bytes.Buffer
	if code := run([]string{"trace", "report", path, "-top", "1"}, &out); code != 0 {
		t.Fatalf("trace report exit %d, output:\n%s", code, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"10 stage records, 2 events, 1 completed",
		"submit → ingest",
		"admit → wal_commit",
		"queue wait → exec",
		"e2e",
		"slowest 1 events",
		"event 1 (origin 7, trace 65543)",
		"round 2",
		"(probed in 1 rounds)",
		"fairness (e2e latency across 1 completed events)",
		"jain index 1.0000",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q; full output:\n%s", want, got)
		}
	}
}

func TestTraceReportEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if code := run([]string{"trace", "report", path}, &out); code == 0 {
		t.Fatalf("trace report on empty file exited 0, output:\n%s", out.String())
	}
}

func TestTraceReportMissingFile(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"trace", "report"}, &out); code != 2 {
		t.Fatalf("trace report without a file exited %d, want 2", code)
	}
	if code := run([]string{"trace", "report", "/nonexistent/spans.jsonl"}, &out); code != 1 {
		t.Fatalf("trace report on missing file exited %d, want 1", code)
	}
}
