// Command updatectl is the client for the update-controller daemon
// (cmd/updated).
//
// Usage:
//
//	updatectl -addr host:7421 ping
//	updatectl -addr host:7421 stats
//	updatectl -addr host:7421 submit trace.jsonl   # events from cmd/tracegen
//	updatectl -addr host:7421 -batch 64 submit trace.jsonl
//	updatectl -addr host:7421 status <event-id>
//	updatectl -addr host:7421 results
//	updatectl -addr host:7421 snapshot > state.json
//	updatectl -addr host:7421 trace [n] > trace.jsonl
//	updatectl -addr host:7421 fault link-down -link 12
//	updatectl -addr host:7421 fault install-timeout -times 2
//	updatectl -addr host:7421 repl status
//	updatectl -addr follower:7421 repl promote
//	updatectl -addr host:7421 -codec v2 stats          # binary v2 framing
//	updatectl wal info /var/lib/updated/wal            # offline WAL inspection
//	updatectl wal verify /var/lib/updated/wal
//	updatectl wal dump /var/lib/updated/wal > records.jsonl
//
// wal inspects a daemon's write-ahead log directory without a server:
// info prints the meta, checkpoint and segment layout, verify re-reads
// every frame (CRC-checked) and reports torn tails, dump writes every
// record after the checkpoint as JSON lines.
//
// submit reads JSON Lines (one event per line, the cmd/tracegen format),
// submits every event, waits for completion, and prints per-event metrics.
// With -batch n > 1 it groups events into submit-batch requests and backs
// off on overload rejections, honoring the server's retry-after hint.
//
// fault injects a failure into the running schedule: link-down/link-up
// take -link, switch-down/switch-up take -node, install-timeout takes
// -event (0 = next executed) and -times. The response reports what was
// disrupted and any repair event minted to re-admit the affected flows.
//
// repl status prints the server's replication role, term, log position
// and either its registered followers (leader) or its leader address
// and fold lag (follower). repl promote asks a warm follower to take
// over as leader: it drains its folded backlog, fences the old leader
// with a bumped term and starts accepting writes.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"netupdate/internal/ctl"
	"netupdate/internal/wal"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("updatectl", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "127.0.0.1:7421", "controller address")
		timeout = fs.Duration("timeout", 30*time.Second, "per-event wait timeout for submit")
		batch   = fs.Int("batch", 1, "submit events in batches of this size (one submit-batch request each, with overload backoff)")
		codec   = fs.String("codec", "v1", "wire codec: v1 (JSON) or v2 (binary framing)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	rest := fs.Args()
	if len(rest) == 0 {
		fmt.Fprintln(os.Stderr, "updatectl: need a command: ping|stats|submit|status|results|snapshot|trace|fault|repl|wal")
		return 2
	}
	if rest[0] == "wal" {
		// Offline log inspection: no server, no dial (except `wal info
		// -addr`, which dials inside walCmd for live fsync stats).
		return walCmd(rest[1:], stdout)
	}
	if rest[0] == "trace" && len(rest) >= 2 && rest[1] == "report" {
		// Offline span-file analysis: no server, no dial.
		return traceReport(rest[2:], stdout)
	}

	var client *ctl.Client
	var err error
	switch *codec {
	case "v1":
		client, err = ctl.Dial(*addr)
	case "v2":
		client, err = ctl.DialBinary(*addr)
	default:
		fmt.Fprintf(os.Stderr, "updatectl: unknown codec %q (want v1 or v2)\n", *codec)
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "updatectl: %v\n", err)
		return 1
	}
	defer func() {
		if err := client.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "updatectl: close: %v\n", err)
		}
	}()

	switch rest[0] {
	case "ping":
		if err := client.Ping(); err != nil {
			fmt.Fprintf(os.Stderr, "updatectl: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout, "ok")
		return 0

	case "stats":
		stats, err := client.Stats()
		if err != nil {
			fmt.Fprintf(os.Stderr, "updatectl: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "scheduler      %s\n", stats.Scheduler)
		switch {
		case stats.ShardID > 0:
			fmt.Fprintf(stdout, "shard          %d of %d\n", stats.ShardID, stats.Shards)
		case stats.Shards > 1:
			fmt.Fprintf(stdout, "sharding       gateway over %d shards, cross-shard %d admitted / %d pool-rejected\n",
				stats.Shards, stats.CrossEvents, stats.CrossRejected)
		}
		fmt.Fprintf(stdout, "utilization    %.3f\n", stats.Utilization)
		fmt.Fprintf(stdout, "flows placed   %d\n", stats.FlowsPlaced)
		fmt.Fprintf(stdout, "events queued  %d\n", stats.EventsQueued)
		fmt.Fprintf(stdout, "events done    %d\n", stats.EventsDone)
		fmt.Fprintf(stdout, "total cost     %.1f Mbps\n", float64(stats.TotalCostBps)/1e6)
		fmt.Fprintf(stdout, "avg ECT        %v\n", stats.AvgECT)
		fmt.Fprintf(stdout, "tail ECT       %v\n", stats.TailECT)
		fmt.Fprintf(stdout, "avg delay      %v\n", stats.AvgQueuingDelay)
		fmt.Fprintf(stdout, "plan time      %v\n", stats.PlanTime)
		fmt.Fprintf(stdout, "virtual clock  %v\n", stats.VirtualClock)
		fmt.Fprintf(stdout, "rounds         %d\n", stats.Rounds)
		fmt.Fprintf(stdout, "probe cache    %d hits / %d misses (%.2f hit rate)\n",
			stats.ProbeCacheHits, stats.ProbeCacheMisses, stats.ProbeHitRate)
		fmt.Fprintf(stdout, "probe plans    %d cold, %d incremental replans\n",
			stats.ProbeColdPlans, stats.ProbeIncrementalReplans)
		fmt.Fprintf(stdout, "codec          %d v2 conns, %d v1 frames, %d v2 frames\n",
			stats.CodecV2Conns, stats.FramesV1, stats.FramesV2)
		fmt.Fprintf(stdout, "faults         %d injected, %d links down, %d repair events, %d flows disrupted\n",
			stats.FaultsInjected, stats.LinksDown, stats.RepairEvents, stats.FlowsDisrupted)
		fmt.Fprintf(stdout, "installs       %d retries, %d rollbacks\n",
			stats.InstallRetries, stats.InstallRollbacks)
		fmt.Fprintf(stdout, "ingest         %d accepted, %d rejected, %d retried, %d batches (watermark %d)\n",
			stats.IngestAccepted, stats.IngestRejected, stats.IngestRetried,
			stats.IngestBatches, stats.IngestWatermark)
		if stats.WALEnabled {
			fmt.Fprintf(stdout, "wal            seq %d, %d appends, %d checkpoints (covered seq %d)\n",
				stats.WALLastSeq, stats.WALAppends, stats.WALCheckpoints, stats.WALCheckpointSeq)
			fmt.Fprintf(stdout, "recovery       %d records replayed in %d ms\n",
				stats.WALReplayed, stats.WALRecoveryMs)
		}
		if stats.LatencyE2EP99Ns > 0 {
			fmt.Fprintf(stdout, "latency e2e    p50 %v, p95 %v, p99 %v, p99.9 %v\n",
				time.Duration(stats.LatencyE2EP50Ns), time.Duration(stats.LatencyE2EP95Ns),
				time.Duration(stats.LatencyE2EP99Ns), time.Duration(stats.LatencyE2EP999Ns))
			fmt.Fprintf(stdout, "latency split  queue p50 %v / p99 %v, rounds p50 %v / p99 %v, %d spans dropped\n",
				time.Duration(stats.LatencyQueueP50Ns), time.Duration(stats.LatencyQueueP99Ns),
				time.Duration(stats.LatencyRoundsP50Ns), time.Duration(stats.LatencyRoundsP99Ns),
				stats.SpansDropped)
		}
		if stats.WALSyncPolicy != "" {
			fmt.Fprintf(stdout, "wal fsync      policy %s, %d syncs, p50 %v, p99 %v\n",
				stats.WALSyncPolicy, stats.WALFsyncCount,
				time.Duration(stats.WALFsyncP50Ns), time.Duration(stats.WALFsyncP99Ns))
		}
		return 0

	case "trace":
		n := 0 // all retained records
		if len(rest) >= 2 {
			v, err := strconv.Atoi(rest[1])
			if err != nil {
				fmt.Fprintf(os.Stderr, "updatectl: bad record count %q\n", rest[1])
				return 2
			}
			n = v
		}
		records, err := client.Trace(n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "updatectl: %v\n", err)
			return 1
		}
		enc := json.NewEncoder(stdout)
		for i := range records {
			if err := enc.Encode(&records[i]); err != nil {
				fmt.Fprintf(os.Stderr, "updatectl: %v\n", err)
				return 1
			}
		}
		return 0

	case "status":
		if len(rest) < 2 {
			fmt.Fprintln(os.Stderr, "updatectl: status needs an event id")
			return 2
		}
		id, err := strconv.ParseInt(rest[1], 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "updatectl: bad event id %q\n", rest[1])
			return 2
		}
		st, err := client.Status(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "updatectl: %v\n", err)
			return 1
		}
		printStatus(stdout, st)
		return 0

	case "results":
		results, err := client.Results()
		if err != nil {
			fmt.Fprintf(os.Stderr, "updatectl: %v\n", err)
			return 1
		}
		for _, st := range results {
			printStatus(stdout, st)
		}
		return 0

	case "snapshot":
		snap, err := client.Snapshot()
		if err != nil {
			fmt.Fprintf(os.Stderr, "updatectl: %v\n", err)
			return 1
		}
		if err := snap.Write(stdout); err != nil {
			fmt.Fprintf(os.Stderr, "updatectl: %v\n", err)
			return 1
		}
		return 0

	case "submit":
		if len(rest) < 2 {
			fmt.Fprintln(os.Stderr, "updatectl: submit needs a trace file (- for stdin)")
			return 2
		}
		var in io.Reader = os.Stdin
		if rest[1] != "-" {
			f, err := os.Open(rest[1])
			if err != nil {
				fmt.Fprintf(os.Stderr, "updatectl: %v\n", err)
				return 1
			}
			defer func() {
				if err := f.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "updatectl: close trace: %v\n", err)
				}
			}()
			in = f
		}
		return submitAll(client, in, stdout, *timeout, *batch)

	case "fault":
		if len(rest) < 2 {
			fmt.Fprintln(os.Stderr, "updatectl: fault needs an action: link-down|link-up|switch-down|switch-up|install-timeout")
			return 2
		}
		ffs := flag.NewFlagSet("fault", flag.ContinueOnError)
		var (
			link  = ffs.Int("link", 0, "target link index (link-down/link-up)")
			node  = ffs.Int("node", 0, "target switch index (switch-down/switch-up)")
			event = ffs.Int64("event", 0, "target event for install-timeout (0 = next executed)")
			times = ffs.Int("times", 1, "how many install attempts fail (install-timeout)")
		)
		if err := ffs.Parse(rest[2:]); err != nil {
			return 2
		}
		res, err := client.Fault(ctl.FaultSpec{
			Action: rest[1], Link: *link, Node: *node, Event: *event, Times: *times,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "updatectl: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "fault %s: %d links changed, %d flows disrupted, %d links down\n",
			res.Action, res.LinksChanged, res.FlowsAffected, res.LinksDown)
		if res.RepairEventID != 0 {
			fmt.Fprintf(stdout, "repair event %d queued\n", res.RepairEventID)
		}
		return 0

	case "repl":
		if len(rest) < 2 {
			fmt.Fprintln(os.Stderr, "updatectl: repl needs a subcommand: status|promote")
			return 2
		}
		var info ctl.ReplInfo
		switch rest[1] {
		case "status":
			info, err = client.ReplStatus()
		case "promote":
			info, err = client.Promote()
		default:
			fmt.Fprintf(os.Stderr, "updatectl: unknown repl subcommand %q (want status or promote)\n", rest[1])
			return 2
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "updatectl: %v\n", err)
			return 1
		}
		printRepl(stdout, info)
		return 0

	default:
		fmt.Fprintf(os.Stderr, "updatectl: unknown command %q\n", rest[0])
		return 2
	}
}

// printRepl renders a repl status/promote response: common role line,
// then the follower's session view or the leader's follower table.
func printRepl(w io.Writer, info ctl.ReplInfo) {
	fmt.Fprintf(w, "role        %s (term %d)\n", info.Role, info.Term)
	fmt.Fprintf(w, "last seq    %d\n", info.LastSeq)
	if info.LeaderAddr != "" {
		fmt.Fprintf(w, "leader      %s (lag %d records)\n", info.LeaderAddr, info.LagRecords)
	}
	if info.LastError != "" {
		fmt.Fprintf(w, "last error  %s\n", info.LastError)
	}
	for _, f := range info.Followers {
		state := "catching up"
		if f.Synced {
			state = "synced"
		}
		fmt.Fprintf(w, "follower    %s: acked seq %d, lag %d (%s)\n",
			f.Addr, f.AckedSeq, f.LagRecords, state)
	}
	if info.FailoverMs > 0 {
		fmt.Fprintf(w, "failover    promoted in %d ms\n", info.FailoverMs)
	}
}

// traceEvent matches cmd/tracegen's JSONL schema.
type traceEvent struct {
	ID    int64 `json:"id"`
	Kind  string
	Flows []struct {
		Src       int   `json:"src"`
		Dst       int   `json:"dst"`
		DemandBps int64 `json:"demand_bps"`
		SizeBytes int64 `json:"size_bytes"`
	} `json:"flows"`
}

// submitAll reads JSONL events and submits them — one request per event,
// or in submit-batch requests of batchSize with overload backoff — then
// waits for completion.
func submitAll(client *ctl.Client, in io.Reader, stdout io.Writer, timeout time.Duration, batchSize int) int {
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<24)
	var specs []ctl.EventSpec
	for scanner.Scan() {
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		var te traceEvent
		if err := json.Unmarshal(line, &te); err != nil {
			fmt.Fprintf(os.Stderr, "updatectl: bad trace line: %v\n", err)
			return 1
		}
		spec := ctl.EventSpec{Kind: te.Kind}
		for _, f := range te.Flows {
			spec.Flows = append(spec.Flows, ctl.FlowSpec{
				Src: f.Src, Dst: f.Dst, DemandBps: f.DemandBps, SizeBytes: f.SizeBytes,
			})
		}
		specs = append(specs, spec)
	}
	if err := scanner.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "updatectl: read trace: %v\n", err)
		return 1
	}
	var ids []int64
	if batchSize <= 1 {
		for _, spec := range specs {
			id, err := client.Submit(spec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "updatectl: submit: %v\n", err)
				return 1
			}
			ids = append(ids, id)
		}
	} else {
		for len(specs) > 0 {
			n := batchSize
			if n > len(specs) {
				n = len(specs)
			}
			got, err := client.SubmitBatchRetry(specs[:n], 5)
			if err != nil {
				fmt.Fprintf(os.Stderr, "updatectl: submit-batch: %v\n", err)
				return 1
			}
			ids = append(ids, got...)
			specs = specs[n:]
		}
	}
	fmt.Fprintf(stdout, "submitted %d events\n", len(ids))
	for _, id := range ids {
		st, err := client.WaitDone(id, timeout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "updatectl: %v\n", err)
			return 1
		}
		printStatus(stdout, st)
	}
	return 0
}

// walCmd inspects a WAL directory offline: info, verify or dump.
// `wal info -addr host:port` instead asks a live server for its fsync
// latency profile and sync policy.
func walCmd(args []string, stdout io.Writer) int {
	if len(args) < 2 {
		fmt.Fprintln(os.Stderr, "updatectl: wal needs a subcommand and a directory: wal info|verify|dump <dir> (or wal info -addr host:port)")
		return 2
	}
	sub, dir := args[0], args[1]
	if sub == "info" && dir == "-addr" {
		if len(args) < 3 {
			fmt.Fprintln(os.Stderr, "updatectl: wal info -addr needs a controller address")
			return 2
		}
		return walInfoLive(args[2], stdout)
	}
	log, err := wal.Open(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "updatectl: wal: %v\n", err)
		return 1
	}
	switch sub {
	case "info":
		if m := log.Meta(); m != nil {
			fmt.Fprintf(stdout, "meta        format %d, scheduler %s, seed %d, k=%d, util %.3f, watermark %d, tables %d\n",
				m.Format, m.Scheduler, m.Seed, m.K, m.Util, m.Watermark, m.Tables)
			if m.Shard > 0 {
				fmt.Fprintf(stdout, "shard       %d of %d (log bound to this engine slot)\n", m.Shard, m.Shards)
			}
		} else {
			fmt.Fprintln(stdout, "meta        (none: empty log)")
		}
		if ck := log.Checkpoint(); ck != nil {
			fmt.Fprintf(stdout, "checkpoint  seq %d, vt %v, rounds %d, state %d bytes\n",
				ck.ID.Seq, time.Duration(ck.ID.VT), ck.Rounds, len(ck.State))
		} else {
			fmt.Fprintln(stdout, "checkpoint  (none)")
		}
		for _, seg := range log.Segments() {
			torn := ""
			if seg.Truncated {
				torn = " (torn tail)"
			}
			fmt.Fprintf(stdout, "segment     %s: base %d, %d records, last seq %d%s\n",
				seg.Path, seg.Base, seg.Records, seg.LastSeq, torn)
		}
		fmt.Fprintf(stdout, "last seq    %d\n", log.LastSeq())
		return 0

	case "verify":
		var events, faults int
		info, err := log.Replay(0, func(rec *wal.Record) error {
			switch rec.Type {
			case wal.TypeEvent:
				events++
			case wal.TypeFault:
				faults++
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "updatectl: wal verify: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "ok: %d records (%d events, %d faults), last seq %d\n",
			info.Records, events, faults, info.LastSeq)
		if info.Truncated {
			fmt.Fprintln(stdout, "note: torn tail truncated after last valid frame")
		}
		return 0

	case "dump":
		after := int64(0)
		if ck := log.Checkpoint(); ck != nil {
			after = ck.ID.Seq
		}
		enc := json.NewEncoder(stdout)
		if _, err := log.Replay(after, func(rec *wal.Record) error {
			return enc.Encode(rec)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "updatectl: wal dump: %v\n", err)
			return 1
		}
		return 0

	default:
		fmt.Fprintf(os.Stderr, "updatectl: unknown wal subcommand %q (want info, verify or dump)\n", sub)
		return 2
	}
}

// walInfoLive prints a running server's durability profile: sync policy,
// append/checkpoint counters and the fsync latency histogram from Stats.
func walInfoLive(addr string, stdout io.Writer) int {
	client, err := ctl.Dial(addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "updatectl: %v\n", err)
		return 1
	}
	defer client.Close()
	stats, err := client.Stats()
	if err != nil {
		fmt.Fprintf(os.Stderr, "updatectl: %v\n", err)
		return 1
	}
	if !stats.WALEnabled {
		fmt.Fprintln(stdout, "wal disabled on this server")
		return 0
	}
	fmt.Fprintf(stdout, "wal         seq %d, %d appends, %d checkpoints (covered seq %d)\n",
		stats.WALLastSeq, stats.WALAppends, stats.WALCheckpoints, stats.WALCheckpointSeq)
	fmt.Fprintf(stdout, "sync policy %s\n", stats.WALSyncPolicy)
	if stats.WALFsyncCount > 0 {
		fmt.Fprintf(stdout, "fsync       %d syncs, p50 %v, p99 %v\n",
			stats.WALFsyncCount, time.Duration(stats.WALFsyncP50Ns), time.Duration(stats.WALFsyncP99Ns))
	} else {
		fmt.Fprintln(stdout, "fsync       no syncs observed yet")
	}
	return 0
}

func printStatus(w io.Writer, st ctl.EventStatus) {
	switch st.State {
	case ctl.StateDone:
		fmt.Fprintf(w, "event %-4d done   %d/%d flows admitted, cost %.1f Mbps, delay %v, ECT %v\n",
			st.EventID, st.Admitted, st.Admitted+st.Failed,
			float64(st.CostBps)/1e6, st.QueuingDelay, st.ECT)
	default:
		fmt.Fprintf(w, "event %-4d %s (%d flows)\n", st.EventID, st.State, st.Flows)
	}
}
