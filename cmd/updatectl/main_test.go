package main

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"netupdate/internal/core"
	"netupdate/internal/ctl"
	"netupdate/internal/migration"
	"netupdate/internal/netstate"
	"netupdate/internal/routing"
	"netupdate/internal/sched"
	"netupdate/internal/sim"
	"netupdate/internal/topology"
)

// startDaemon brings up a controller on an ephemeral port.
func startDaemon(t *testing.T) (addr string, ft *topology.FatTree) {
	t.Helper()
	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	n := netstate.New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.WidestFit{})
	planner := core.NewPlanner(migration.NewPlanner(n, 0), core.FailSkip)
	srv := ctl.NewServer(planner, sched.NewPLMTF(2, 1), sim.Config{InstallTime: time.Millisecond})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	return l.Addr().String(), ft
}

func TestPingCommand(t *testing.T) {
	addr, _ := startDaemon(t)
	var out bytes.Buffer
	if code := run([]string{"-addr", addr, "ping"}, &out); code != 0 {
		t.Fatalf("ping exit = %d", code)
	}
	if !strings.Contains(out.String(), "ok") {
		t.Errorf("ping output = %q", out.String())
	}
}

func TestStatsCommand(t *testing.T) {
	addr, _ := startDaemon(t)
	var out bytes.Buffer
	if code := run([]string{"-addr", addr, "stats"}, &out); code != 0 {
		t.Fatalf("stats exit = %d", code)
	}
	for _, want := range []string{"scheduler", "p-lmtf", "events done"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stats output missing %q:\n%s", want, out.String())
		}
	}
}

func TestSubmitStatusResultsFlow(t *testing.T) {
	addr, ft := startDaemon(t)
	hosts := ft.Hosts()
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	line := `{"id":1,"kind":"test","flows":[` +
		`{"src":` + itoa(int(hosts[0])) + `,"dst":` + itoa(int(hosts[1])) + `,"demand_bps":1000000},` +
		`{"src":` + itoa(int(hosts[2])) + `,"dst":` + itoa(int(hosts[3])) + `,"demand_bps":2000000}]}` + "\n"
	if err := os.WriteFile(trace, []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if code := run([]string{"-addr", addr, "submit", trace}, &out); code != 0 {
		t.Fatalf("submit exit = %d; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "submitted 1 events") ||
		!strings.Contains(out.String(), "done") {
		t.Errorf("submit output:\n%s", out.String())
	}

	out.Reset()
	if code := run([]string{"-addr", addr, "status", "1"}, &out); code != 0 {
		t.Fatalf("status exit = %d", code)
	}
	if !strings.Contains(out.String(), "done") {
		t.Errorf("status output:\n%s", out.String())
	}

	out.Reset()
	if code := run([]string{"-addr", addr, "results"}, &out); code != 0 {
		t.Fatalf("results exit = %d", code)
	}
	if !strings.Contains(out.String(), "event 1") {
		t.Errorf("results output:\n%s", out.String())
	}
}

func TestBadInvocations(t *testing.T) {
	addr, _ := startDaemon(t)
	var out bytes.Buffer
	if code := run([]string{"-addr", addr}, &out); code != 2 {
		t.Errorf("missing command exit = %d, want 2", code)
	}
	if code := run([]string{"-addr", addr, "bogus"}, &out); code != 2 {
		t.Errorf("unknown command exit = %d, want 2", code)
	}
	if code := run([]string{"-addr", addr, "status", "abc"}, &out); code != 2 {
		t.Errorf("bad id exit = %d, want 2", code)
	}
	if code := run([]string{"-addr", addr, "status"}, &out); code != 2 {
		t.Errorf("missing id exit = %d, want 2", code)
	}
	if code := run([]string{"-addr", addr, "submit"}, &out); code != 2 {
		t.Errorf("missing trace exit = %d, want 2", code)
	}
	if code := run([]string{"-addr", "127.0.0.1:1", "ping"}, &out); code != 1 {
		t.Errorf("unreachable daemon exit = %d, want 1", code)
	}
}

func itoa(v int) string { return strconv.Itoa(v) }

func TestFaultCommand(t *testing.T) {
	addr, ft := startDaemon(t)
	hosts := ft.Hosts()

	// Arm an install timeout, then submit an event to absorb it: the event
	// still completes (one timeout is survivable) and stats count the retry.
	var out bytes.Buffer
	if code := run([]string{"-addr", addr, "fault", "install-timeout", "-times", "1"}, &out); code != 0 {
		t.Fatalf("fault install-timeout exit = %d", code)
	}
	if !strings.Contains(out.String(), "fault install-timeout") {
		t.Errorf("fault output:\n%s", out.String())
	}
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	line := `{"id":1,"kind":"test","flows":[` +
		`{"src":` + itoa(int(hosts[0])) + `,"dst":` + itoa(int(hosts[1])) + `,"demand_bps":1000000}]}` + "\n"
	if err := os.WriteFile(trace, []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := run([]string{"-addr", addr, "submit", trace}, &out); code != 0 {
		t.Fatalf("submit exit = %d; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "1/1 flows admitted") {
		t.Errorf("submit output:\n%s", out.String())
	}

	// Flip a link down and back up; the gauge tracks both transitions.
	out.Reset()
	if code := run([]string{"-addr", addr, "fault", "link-down", "-link", "0"}, &out); code != 0 {
		t.Fatalf("fault link-down exit = %d", code)
	}
	if !strings.Contains(out.String(), "1 links changed") || !strings.Contains(out.String(), "1 links down") {
		t.Errorf("link-down output:\n%s", out.String())
	}
	out.Reset()
	if code := run([]string{"-addr", addr, "fault", "link-up", "-link", "0"}, &out); code != 0 {
		t.Fatalf("fault link-up exit = %d", code)
	}
	if !strings.Contains(out.String(), "0 links down") {
		t.Errorf("link-up output:\n%s", out.String())
	}

	out.Reset()
	if code := run([]string{"-addr", addr, "stats"}, &out); code != 0 {
		t.Fatalf("stats exit = %d", code)
	}
	for _, want := range []string{"3 injected", "0 links down", "1 retries, 0 rollbacks"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stats output missing %q:\n%s", want, out.String())
		}
	}

	// Bad invocations: missing action is usage (2), unknown action is a
	// server-side reject (1).
	if code := run([]string{"-addr", addr, "fault"}, &out); code != 2 {
		t.Errorf("missing action exit = %d, want 2", code)
	}
	if code := run([]string{"-addr", addr, "fault", "meteor-strike"}, &out); code != 1 {
		t.Errorf("unknown action exit = %d, want 1", code)
	}
}

func TestSnapshotCommand(t *testing.T) {
	addr, _ := startDaemon(t)
	var out bytes.Buffer
	if code := run([]string{"-addr", addr, "snapshot"}, &out); code != 0 {
		t.Fatalf("snapshot exit = %d", code)
	}
	if !strings.Contains(out.String(), `"version"`) || !strings.Contains(out.String(), `"nodes"`) {
		t.Errorf("snapshot output not a snapshot document:\n%.200s", out.String())
	}
}
