package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunEmitsValidJSONL(t *testing.T) {
	var out bytes.Buffer
	code := run([]string{"-k", "4", "-events", "5", "-min-flows", "2", "-max-flows", "4", "-seed", "3"}, &out)
	if code != 0 {
		t.Fatalf("run exit = %d", code)
	}
	scanner := bufio.NewScanner(&out)
	lines := 0
	for scanner.Scan() {
		var ev eventJSON
		if err := json.Unmarshal(scanner.Bytes(), &ev); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if ev.ID != int64(lines+1) {
			t.Errorf("line %d id = %d", lines, ev.ID)
		}
		if len(ev.Flows) < 2 || len(ev.Flows) > 4 {
			t.Errorf("line %d flows = %d, want [2,4]", lines, len(ev.Flows))
		}
		for _, f := range ev.Flows {
			if f.Src == f.Dst || f.DemandBps <= 0 {
				t.Errorf("line %d invalid flow %+v", lines, f)
			}
		}
		lines++
	}
	if lines != 5 {
		t.Errorf("lines = %d, want 5", lines)
	}
}

func TestRunDeterministicUnderSeed(t *testing.T) {
	var a, b bytes.Buffer
	if run([]string{"-events", "3", "-seed", "9"}, &a) != 0 {
		t.Fatal("first run failed")
	}
	if run([]string{"-events", "3", "-seed", "9"}, &b) != 0 {
		t.Fatal("second run failed")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same-seed runs differ")
	}
}

func TestRunWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	var out bytes.Buffer
	if code := run([]string{"-events", "2", "-out", path}, &out); code != 0 {
		t.Fatalf("run exit = %d", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("output file empty")
	}
	if out.Len() != 0 {
		t.Error("stdout written despite -out")
	}
}

func TestRunBadArgs(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-trace", "bogus"}, &out); code != 2 {
		t.Errorf("bad trace exit = %d, want 2", code)
	}
	if code := run([]string{"-k", "3"}, &out); code != 1 {
		t.Errorf("odd k exit = %d, want 1", code)
	}
	if code := run([]string{"-nope"}, &out); code != 2 {
		t.Errorf("unknown flag exit = %d, want 2", code)
	}
}
