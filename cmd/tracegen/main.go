// Command tracegen emits synthetic workloads as JSON Lines: one update
// event per line, each with its flow specs (host indices, demand, size).
// The output can seed external tools or be inspected to understand the
// traffic models (see internal/trace for the Yahoo!-substitution note).
//
// Usage:
//
//	tracegen [-k 8] [-events 30] [-min-flows 10] [-max-flows 100]
//	         [-trace yahoo|random] [-seed 1] [-out trace.jsonl]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"netupdate/internal/topology"
	"netupdate/internal/trace"
)

// flowJSON is one flow of an event in the emitted trace.
type flowJSON struct {
	Src       int   `json:"src"`
	Dst       int   `json:"dst"`
	DemandBps int64 `json:"demand_bps"`
	SizeBytes int64 `json:"size_bytes"`
}

// eventJSON is one update event in the emitted trace.
type eventJSON struct {
	ID    int64      `json:"id"`
	Kind  string     `json:"kind"`
	Flows []flowJSON `json:"flows"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		k         = fs.Int("k", 8, "fat-tree arity (host space = k^3/4)")
		events    = fs.Int("events", 30, "number of update events")
		minFlows  = fs.Int("min-flows", 10, "minimum flows per event")
		maxFlows  = fs.Int("max-flows", 100, "maximum flows per event")
		traceName = fs.String("trace", "yahoo", "traffic model: yahoo|random")
		seed      = fs.Int64("seed", 1, "random seed")
		out       = fs.String("out", "", "output path (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var model trace.Model
	switch *traceName {
	case "yahoo":
		model = trace.YahooLike{}
	case "random":
		model = trace.Uniform{}
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown trace %q\n", *traceName)
		return 2
	}

	ft, err := topology.NewFatTree(*k, topology.Gbps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		return 1
	}
	gen, err := trace.NewGenerator(*seed, model, ft.Hosts())
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		return 1
	}

	var w io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			return 1
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "tracegen: close: %v\n", err)
			}
		}()
		w = f
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range gen.Events(*events, *minFlows, *maxFlows) {
		ej := eventJSON{ID: int64(ev.ID), Kind: ev.Kind}
		for _, s := range ev.Specs {
			ej.Flows = append(ej.Flows, flowJSON{
				Src:       int(s.Src),
				Dst:       int(s.Dst),
				DemandBps: int64(s.Demand),
				SizeBytes: s.Size,
			})
		}
		if err := enc.Encode(ej); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: encode: %v\n", err)
			return 1
		}
	}
	if err := bw.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: flush: %v\n", err)
		return 1
	}
	return 0
}
