// Command loadgen is an open-loop load generator for the update
// controller (cmd/updated): it offers update events at a configured
// Poisson rate regardless of how fast the server absorbs them, submits
// them in batches over concurrent connections, and reports sustained
// throughput and the overload-rejection rate.
//
// Usage:
//
//	loadgen -addr host:7421 -rate 500 -duration 10s [-conns 4] [-batch 16]
//	loadgen -selfhost -rate 2000 -duration 5s -watermark 64 -json
//	loadgen -selfhost -codec v1 -rate 500 -duration 5s   # JSON v1 fallback
//	loadgen -selfhost -shards 4 -k 8 -rate 2000 -duration 5s  # sharded control plane
//
// With -addr, events target an already-running daemon; host endpoints
// are discovered from its snapshot. With -selfhost, loadgen spins up an
// in-process controller (same construction as cmd/updated) and drives
// it over loopback — handy for smoke tests and benchmarks. Selfhost
// runs can journal into a WAL (-wal-dir, -wal-sync) to measure append
// overhead, and reopening the same directory measures restart recovery
// (the summary's server stats carry wal_recovery_ms).
//
// Being open-loop, the arrival process never waits for the server: if
// every connection is busy when a batch becomes due, the batch is shed
// client-side and counted as dropped rather than delaying later
// arrivals. With -retries > 0, overload-rejected events are resubmitted
// with capped exponential backoff honoring the server's retry-after
// hint; with -retries 0 a rejection is final and counts toward the
// rejection rate.
//
// The wire codec defaults to the binary v2 framing (-codec v2); with
// -retries <= 1 each connection pipelines up to -pipeline submit-batch
// requests without waiting for responses, which is what sustains
// wire-speed offered rates. -codec v1 falls back to JSON, and retries
// force the synchronous request/response path in either codec. The
// summary reports client-observed submit latency (write to response)
// percentiles.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	netpkg "net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"netupdate/internal/core"
	"netupdate/internal/ctl"
	"netupdate/internal/migration"
	"netupdate/internal/netstate"
	"netupdate/internal/obs"
	"netupdate/internal/routing"
	"netupdate/internal/sched"
	"netupdate/internal/shard"
	"netupdate/internal/sim"
	"netupdate/internal/topology"
	"netupdate/internal/trace"
	"netupdate/internal/wal"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

// summary is the generator's end-of-run report, printed as JSON with
// -json (the shape scripts/bench.sh embeds) or as text otherwise.
type summary struct {
	RateTarget  float64 `json:"rate_target"`
	DurationSec float64 `json:"duration_sec"`
	ElapsedSec  float64 `json:"elapsed_sec"`
	// Offered = events the arrival process generated; Submitted = those
	// that reached the wire (offered minus dropped); Accepted/Rejected/
	// Invalid are per-event outcomes; Dropped were shed client-side.
	Offered   int64 `json:"offered"`
	Submitted int64 `json:"submitted"`
	Accepted  int64 `json:"accepted"`
	Rejected  int64 `json:"rejected"`
	Invalid   int64 `json:"invalid"`
	Dropped   int64 `json:"dropped"`
	// AcceptedPerSec is the sustained ingest rate; RejectionRate is
	// rejected over submitted.
	AcceptedPerSec float64 `json:"accepted_per_sec"`
	RejectionRate  float64 `json:"rejection_rate"`
	// Codec is the wire codec used ("v1" JSON or "v2" binary), and
	// Pipelined reports whether requests were pipelined.
	Codec     string `json:"codec"`
	Pipelined bool   `json:"pipelined"`
	// SubmitP50Ms/SubmitP99Ms are client-observed submit-batch latency
	// percentiles (request written to response received) in
	// milliseconds; 0 when no batch completed.
	SubmitP50Ms float64 `json:"submit_p50_ms"`
	SubmitP99Ms float64 `json:"submit_p99_ms"`
	// Latency is the server-side stage-level latency breakdown (span
	// pipeline percentiles), present when the post-run stats call
	// succeeded.
	Latency *latencySummary `json:"latency,omitempty"`
	// Server echoes the controller's stats after the run (ingest
	// counters, queue depth, scheduler) when the stats call succeeded.
	Server *ctl.Stats `json:"server,omitempty"`
}

// latencySummary is the end-to-end latency block of the report: the
// submit→completion percentiles plus the overload breakdown (time in
// queue vs time in scheduling rounds), all in wall-clock milliseconds.
type latencySummary struct {
	E2EP50Ms  float64 `json:"e2e_p50_ms"`
	E2EP95Ms  float64 `json:"e2e_p95_ms"`
	E2EP99Ms  float64 `json:"e2e_p99_ms"`
	E2EP999Ms float64 `json:"e2e_p999_ms"`
	// Overload breakdown at the tail: where the p99 event spent its time.
	QueueP50Ms  float64 `json:"queue_p50_ms"`
	QueueP99Ms  float64 `json:"queue_p99_ms"`
	RoundsP50Ms float64 `json:"rounds_p50_ms"`
	RoundsP99Ms float64 `json:"rounds_p99_ms"`
	// SpansDropped counts stage records the server shed when the span
	// sink's ring overflowed; SpanFile is the JSONL span file written
	// (selfhost -spans only).
	SpansDropped int64  `json:"spans_dropped"`
	SpanFile     string `json:"span_file,omitempty"`
}

// ms converts nanoseconds to float milliseconds.
func ms(ns int64) float64 { return float64(ns) / float64(time.Millisecond) }

func run(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "", "controller address (empty with -selfhost)")
		selfhost = fs.Bool("selfhost", false, "run an in-process controller and drive it over loopback")
		rate     = fs.Float64("rate", 100, "offered load, events/sec (Poisson arrivals)")
		duration = fs.Duration("duration", 5*time.Second, "how long to offer load")
		conns    = fs.Int("conns", 4, "concurrent submitting connections")
		batchSz  = fs.Int("batch", 16, "events per submit-batch request")
		retries  = fs.Int("retries", 0, "max submit attempts per batch on overload (0 or 1 = no retry)")
		codec    = fs.String("codec", "v2", "wire codec: v2 (binary framing) or v1 (JSON)")
		pipeline = fs.Int("pipeline", 32, "in-flight submit-batch window per connection (codec v2, retries <= 1; 0 = synchronous)")
		seed     = fs.Int64("seed", 1, "random seed for arrivals and event specs")
		minFlows = fs.Int("min-flows", 1, "flows per event, lower bound")
		maxFlows = fs.Int("max-flows", 4, "flows per event, upper bound")
		demand   = fs.Int64("demand-mbps", 5, "per-flow demand in Mbps")
		jsonOut  = fs.Bool("json", false, "print the summary as JSON")
		spanFile = fs.String("spans", "", "selfhost: write stage-level latency spans (JSONL) to this file and attach span contexts to submissions")
		origin   = fs.Uint("origin", 1, "span origin identity carried in submitted trace contexts (16-bit)")

		// Selfhost controller shape (mirrors cmd/updated).
		schedName = fs.String("scheduler", "p-lmtf", "selfhost: scheduling policy (see sched.Names)")
		alpha     = fs.Int("alpha", 4, "selfhost: LMTF/P-LMTF sample size")
		k         = fs.Int("k", 4, "selfhost: fat-tree arity")
		util      = fs.Float64("util", 0.3, "selfhost: background utilization target")
		watermark = fs.Int("watermark", ctl.DefaultHighWatermark, "selfhost: queue high-watermark")
		walDir    = fs.String("wal-dir", "", "selfhost: write-ahead log directory (empty = off); reopening a directory recovers first")
		walSync   = fs.String("wal-sync", "group", "selfhost: WAL durability policy (always, group, off)")
		shards    = fs.Int("shards", 1, "selfhost: partition the controller into this many pod-sharded engines behind an in-process gateway")
		crossFrac = fs.Float64("cross-pool-frac", 0, "selfhost: core capacity fraction reserved for cross-shard events (0 = default 0.25; -shards > 1 only)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *shards > 1 && !*selfhost {
		fmt.Fprintln(os.Stderr, "loadgen: -shards requires -selfhost (point -addr at a sharded daemon instead)")
		return 2
	}
	if *shards > 1 && *spanFile != "" {
		fmt.Fprintln(os.Stderr, "loadgen: -spans is per-engine; not supported with -shards")
		return 2
	}
	if (*addr == "") == !*selfhost {
		fmt.Fprintln(os.Stderr, "loadgen: need exactly one of -addr or -selfhost")
		return 2
	}
	if *rate <= 0 || *batchSz < 1 || *conns < 1 || *minFlows < 1 || *maxFlows < *minFlows {
		fmt.Fprintln(os.Stderr, "loadgen: bad load shape (rate/batch/conns/flows)")
		return 2
	}
	if *codec != "v1" && *codec != "v2" {
		fmt.Fprintf(os.Stderr, "loadgen: unknown codec %q (want v1 or v2)\n", *codec)
		return 2
	}
	pipelined := *codec == "v2" && *retries <= 1 && *pipeline > 0
	if *spanFile != "" && !*selfhost {
		fmt.Fprintln(os.Stderr, "loadgen: -spans requires -selfhost (the span file is written by the in-process controller)")
		return 2
	}
	if *origin > math.MaxUint16 {
		fmt.Fprintf(os.Stderr, "loadgen: -origin %d exceeds 16 bits\n", *origin)
		return 2
	}
	spanOrigin := uint16(*origin)
	spansOn := *spanFile != ""

	target := *addr
	if *selfhost {
		var spanSink obs.Sink
		if spansOn {
			f, err := os.Create(*spanFile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: span file: %v\n", err)
				return 1
			}
			// LIFO defers: the server closes (draining its async span sink)
			// before the file does.
			defer func() {
				if err := f.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "loadgen: span file close: %v\n", err)
				}
			}()
			spanSink = obs.NewJSONLSink(f)
		}
		var svc interface{ Close() error }
		var laddr string
		var err error
		if *shards > 1 {
			svc, laddr, err = startSelfhostSharded(shard.WorldConfig{
				K: *k, Util: *util, Scheduler: *schedName, Alpha: *alpha, Seed: *seed,
				Watermark: *watermark, Shards: *shards, CrossPoolFrac: *crossFrac,
				WALDir: *walDir, WALSync: *walSync,
			})
		} else {
			svc, laddr, err = startSelfhost(*schedName, *alpha, *k, *util, *watermark, *seed, *walDir, *walSync, spanSink)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: selfhost: %v\n", err)
			return 1
		}
		defer func() {
			if err := svc.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: selfhost close: %v\n", err)
			}
		}()
		target = laddr
		fmt.Fprintf(os.Stderr, "loadgen: selfhost controller on %s\n", laddr)
	}

	hosts, err := discoverHosts(target)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		return 1
	}

	// Span contexts ride a flag-gated binary extension that pre-span
	// servers reject, so negotiate before any worker enables them.
	if spansOn {
		if err := probeSpanFeature(target); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			return 1
		}
	}

	var accepted, rejected, invalid, dropped atomic.Int64
	lat := &latencyRecorder{}
	work := make(chan []ctl.EventSpec, *conns*4)
	var wg sync.WaitGroup
	workerErr := make(chan error, *conns)
	for w := 0; w < *conns; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			drainDropped := func() {
				// Drain so the generator never blocks on a dead worker's
				// share of the channel; those events never reach the wire,
				// so they count as dropped, not submitted.
				for batch := range work {
					dropped.Add(int64(len(batch)))
				}
			}
			if pipelined {
				if err := pipelineWorker(target, *pipeline, spansOn, spanOrigin, work, lat, &accepted, &rejected, &invalid); err != nil {
					workerErr <- err
					drainDropped()
				}
				return
			}
			c, err := dialCodec(target, *codec)
			if err != nil {
				workerErr <- err
				drainDropped()
				return
			}
			if spansOn {
				c.EnableSpans(spanOrigin)
			}
			defer c.Close()
			for batch := range work {
				t0 := time.Now()
				submitBatch(c, batch, *retries, &accepted, &rejected, &invalid)
				lat.add(time.Since(t0))
			}
		}()
	}

	// Open-loop arrival process: exponential gaps at the target rate,
	// scheduled against absolute time so slow submissions never stretch
	// the offered load.
	rng := rand.New(rand.NewSource(*seed))
	var offered int64
	start := time.Now()
	next := start
	var pending []ctl.EventSpec
	flush := func() {
		if len(pending) == 0 {
			return
		}
		batch := make([]ctl.EventSpec, len(pending))
		copy(batch, pending)
		pending = pending[:0]
		select {
		case work <- batch:
		default:
			dropped.Add(int64(len(batch)))
		}
	}
	for {
		next = next.Add(time.Duration(rng.ExpFloat64() / *rate * float64(time.Second)))
		if next.Sub(start) > *duration {
			break
		}
		time.Sleep(time.Until(next))
		offered++
		pending = append(pending, randomEvent(rng, hosts, *minFlows, *maxFlows, *demand))
		if len(pending) >= *batchSz {
			flush()
		}
	}
	flush()
	close(work)
	wg.Wait()
	elapsed := time.Since(start)
	close(workerErr)
	for err := range workerErr {
		fmt.Fprintf(os.Stderr, "loadgen: worker: %v\n", err)
	}

	droppedTotal := dropped.Load()
	sum := summary{
		RateTarget:  *rate,
		DurationSec: duration.Seconds(),
		ElapsedSec:  elapsed.Seconds(),
		Offered:     offered,
		Submitted:   offered - droppedTotal,
		Accepted:    accepted.Load(),
		Rejected:    rejected.Load(),
		Invalid:     invalid.Load(),
		Dropped:     droppedTotal,
	}
	if elapsed > 0 {
		sum.AcceptedPerSec = float64(sum.Accepted) / elapsed.Seconds()
	}
	if sum.Submitted > 0 {
		sum.RejectionRate = float64(sum.Rejected) / float64(sum.Submitted)
	}
	sum.Codec = *codec
	sum.Pipelined = pipelined
	p50, p99 := lat.percentiles()
	sum.SubmitP50Ms = float64(p50) / float64(time.Millisecond)
	sum.SubmitP99Ms = float64(p99) / float64(time.Millisecond)
	if c, err := ctl.Dial(target); err == nil {
		if stats, err := c.Stats(); err == nil {
			sum.Server = &stats
			sum.Latency = &latencySummary{
				E2EP50Ms:     ms(stats.LatencyE2EP50Ns),
				E2EP95Ms:     ms(stats.LatencyE2EP95Ns),
				E2EP99Ms:     ms(stats.LatencyE2EP99Ns),
				E2EP999Ms:    ms(stats.LatencyE2EP999Ns),
				QueueP50Ms:   ms(stats.LatencyQueueP50Ns),
				QueueP99Ms:   ms(stats.LatencyQueueP99Ns),
				RoundsP50Ms:  ms(stats.LatencyRoundsP50Ns),
				RoundsP99Ms:  ms(stats.LatencyRoundsP99Ns),
				SpansDropped: stats.SpansDropped,
				SpanFile:     *spanFile,
			}
		}
		_ = c.Close()
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			return 1
		}
	} else {
		fmt.Fprintf(stdout, "offered %d events in %.2fs (target %.0f/s)\n",
			sum.Offered, sum.ElapsedSec, sum.RateTarget)
		fmt.Fprintf(stdout, "accepted %d (%.1f/s), rejected %d (%.1f%%), invalid %d, dropped %d\n",
			sum.Accepted, sum.AcceptedPerSec, sum.Rejected, 100*sum.RejectionRate,
			sum.Invalid, sum.Dropped)
		fmt.Fprintf(stdout, "codec %s%s, submit latency p50 %.2fms p99 %.2fms\n",
			sum.Codec, map[bool]string{true: " pipelined", false: ""}[sum.Pipelined],
			sum.SubmitP50Ms, sum.SubmitP99Ms)
		if s := sum.Server; s != nil {
			fmt.Fprintf(stdout, "server: %s scheduler, %d done, %d queued, ingest %d/%d/%d accepted/rejected/retried (watermark %d)\n",
				s.Scheduler, s.EventsDone, s.EventsQueued,
				s.IngestAccepted, s.IngestRejected, s.IngestRetried, s.IngestWatermark)
			if s.Shards > 1 {
				fmt.Fprintf(stdout, "sharded: %d shards, cross-shard %d admitted / %d pool-rejected\n",
					s.Shards, s.CrossEvents, s.CrossRejected)
			}
		}
		if lb := sum.Latency; lb != nil {
			fmt.Fprintf(stdout, "e2e latency p50 %.2fms p95 %.2fms p99 %.2fms p99.9 %.2fms (queue p99 %.2fms, rounds p99 %.2fms, %d spans dropped)\n",
				lb.E2EP50Ms, lb.E2EP95Ms, lb.E2EP99Ms, lb.E2EP999Ms,
				lb.QueueP99Ms, lb.RoundsP99Ms, lb.SpansDropped)
		}
	}
	if sum.Accepted == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: no events accepted")
		return 1
	}
	return 0
}

// submitBatch sends one batch, retrying overload rejections when asked,
// and folds the per-event outcomes into the run counters.
func submitBatch(c *ctl.Client, batch []ctl.EventSpec, retries int, accepted, rejected, invalid *atomic.Int64) {
	if retries > 1 {
		ids, err := c.SubmitBatchRetry(batch, retries)
		var acc int64
		for _, id := range ids {
			if id != 0 {
				acc++
			}
		}
		accepted.Add(acc)
		rest := int64(len(batch)) - acc
		if rest > 0 {
			if err != nil && !errors.Is(err, ctl.ErrOverloaded) {
				invalid.Add(rest)
			} else {
				rejected.Add(rest)
			}
		}
		return
	}
	verdicts, _, err := c.SubmitBatch(batch)
	if err != nil {
		rejected.Add(int64(len(batch)))
		return
	}
	for _, v := range verdicts {
		switch {
		case v.OK:
			accepted.Add(1)
		case v.Overloaded:
			rejected.Add(1)
		default:
			invalid.Add(1)
		}
	}
}

// randomEvent draws an update event between distinct hosts.
func randomEvent(rng *rand.Rand, hosts []int, minFlows, maxFlows int, demandMbps int64) ctl.EventSpec {
	n := minFlows
	if maxFlows > minFlows {
		n += rng.Intn(maxFlows - minFlows + 1)
	}
	spec := ctl.EventSpec{Kind: "loadgen"}
	for i := 0; i < n; i++ {
		src := hosts[rng.Intn(len(hosts))]
		dst := hosts[rng.Intn(len(hosts))]
		for dst == src {
			dst = hosts[rng.Intn(len(hosts))]
		}
		spec.Flows = append(spec.Flows, ctl.FlowSpec{
			Src: src, Dst: dst, DemandBps: demandMbps * 1e6,
		})
	}
	return spec
}

// discoverHosts fetches the controller's snapshot and returns its host
// node IDs, so the generator works against any topology without flags.
func discoverHosts(addr string) ([]int, error) {
	c, err := ctl.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	snap, err := c.Snapshot()
	if err != nil {
		return nil, err
	}
	var hosts []int
	for i, n := range snap.Nodes {
		if topology.NodeKind(n.Kind) == topology.KindHost {
			hosts = append(hosts, i)
		}
	}
	if len(hosts) < 2 {
		return nil, fmt.Errorf("topology has %d hosts, need at least 2", len(hosts))
	}
	return hosts, nil
}

// startSelfhost builds an in-process controller (the cmd/updated
// construction) listening on an ephemeral loopback port. With walDir
// set, the controller journals admissions there and recovers from any
// existing history first — which is how scripts/bench.sh measures both
// append overhead and restart-recovery time.
func startSelfhost(schedName string, alpha, k int, util float64, watermark int, seed int64, walDir, walSync string, spanSink obs.Sink) (*ctl.Server, string, error) {
	scheduler, err := sched.New(schedName, sched.WithAlpha(alpha), sched.WithSeed(seed))
	if err != nil {
		return nil, "", err
	}
	opts := []ctl.ServerOption{ctl.WithHighWatermark(watermark)}
	if spanSink != nil {
		opts = append(opts, ctl.WithSpanSink(spanSink))
	}
	var walLog *wal.Log
	if walDir != "" {
		policy, err := wal.ParseSyncPolicy(walSync)
		if err != nil {
			return nil, "", err
		}
		if walLog, err = wal.Open(walDir, wal.WithSync(policy)); err != nil {
			return nil, "", err
		}
	}
	ft, err := topology.NewFatTree(k, topology.Gbps)
	if err != nil {
		return nil, "", err
	}
	net := netstate.New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.NewRandomFit(seed+7))
	gen, err := trace.NewGenerator(seed, trace.YahooLike{}, ft.Hosts())
	if err != nil {
		return nil, "", err
	}
	restoring := walLog != nil && walLog.Checkpoint() != nil
	if util > 0 && !restoring {
		if _, err := trace.FillBackground(net, gen, util, 0); err != nil && !errors.Is(err, trace.ErrTargetUnreachable) {
			return nil, "", err
		}
	}
	planner := core.NewPlanner(migration.NewPlanner(net, 0), core.FailSkip)
	var srv *ctl.Server
	if walLog != nil {
		meta := &wal.Meta{
			Format:    wal.FormatVersion,
			Scheduler: scheduler.Name(),
			Seed:      seed,
			K:         k,
			Util:      util,
			Watermark: watermark,
		}
		var rec *ctl.RecoveryInfo
		srv, rec, err = ctl.NewServerWithWAL(planner, scheduler, sim.Config{},
			ctl.WALConfig{Log: walLog, Meta: meta}, opts...)
		if err != nil {
			return nil, "", err
		}
		if rec.Recovered {
			fmt.Fprintf(os.Stderr, "loadgen: selfhost recovered from WAL: %d records replayed in %v\n",
				rec.ReplayedRecords, rec.Elapsed.Round(time.Millisecond))
		}
	} else {
		srv = ctl.NewServer(planner, scheduler, sim.Config{}, opts...)
	}
	l, err := netpkg.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		_ = srv.Close()
		return nil, "", err
	}
	go func() {
		if err := srv.Serve(l); err != nil && !errors.Is(err, ctl.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "loadgen: selfhost serve: %v\n", err)
		}
	}()
	return srv, l.Addr().String(), nil
}

// shardedSelfhost owns an in-process shard cluster plus the gateway
// fronting it; Close tears the wire down before the engines.
type shardedSelfhost struct {
	cl *shard.Cluster
	gw *shard.Gateway
}

func (s *shardedSelfhost) Close() error {
	err := s.gw.Close()
	if cerr := s.cl.Close(); err == nil {
		err = cerr
	}
	return err
}

// startSelfhostSharded builds the -shards selfhost controller: the same
// cluster-behind-a-gateway construction as `updated -shards N`, on an
// ephemeral loopback port.
func startSelfhostSharded(cfg shard.WorldConfig) (*shardedSelfhost, string, error) {
	cl, err := shard.NewCluster(cfg)
	if err != nil {
		return nil, "", err
	}
	gw, err := shard.NewGateway(cl.Part, cl.Ref.Graph(), cl.Cross, cl.Backends())
	if err != nil {
		_ = cl.Close()
		return nil, "", err
	}
	l, err := netpkg.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		_ = cl.Close()
		return nil, "", err
	}
	go func() {
		if err := gw.Serve(l); err != nil && !errors.Is(err, ctl.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "loadgen: selfhost serve: %v\n", err)
		}
	}()
	return &shardedSelfhost{cl: cl, gw: gw}, l.Addr().String(), nil
}

// latencyRecorder accumulates client-observed submit latencies across
// workers for end-of-run percentiles.
type latencyRecorder struct {
	mu      sync.Mutex
	samples []time.Duration
}

func (l *latencyRecorder) add(d time.Duration) {
	l.mu.Lock()
	l.samples = append(l.samples, d)
	l.mu.Unlock()
}

// percentiles returns the nearest-rank p50 and p99, 0 when empty.
func (l *latencyRecorder) percentiles() (p50, p99 time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) == 0 {
		return 0, 0
	}
	s := make([]time.Duration, len(l.samples))
	copy(s, l.samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := func(p float64) time.Duration {
		i := int(math.Ceil(p*float64(len(s)))) - 1
		if i < 0 {
			i = 0
		}
		return s[i]
	}
	return rank(0.50), rank(0.99)
}

// dialCodec connects with the requested wire codec.
func dialCodec(target, codec string) (*ctl.Client, error) {
	if codec == "v2" {
		return ctl.DialBinary(target)
	}
	return ctl.Dial(target)
}

// probeSpanFeature checks the controller advertises span-context
// support before any connection enables the binary span extension.
func probeSpanFeature(target string) error {
	c, err := ctl.Dial(target)
	if err != nil {
		return err
	}
	defer c.Close()
	feats, err := c.Features()
	if err != nil {
		return fmt.Errorf("feature probe: %w", err)
	}
	for _, f := range feats {
		if f == ctl.FeatureSpanContext {
			return nil
		}
	}
	return fmt.Errorf("server does not support %s (features: %v); run without -spans", ctl.FeatureSpanContext, feats)
}

// pipelineWorker drives one pipelined binary connection: batches are
// written without waiting for responses, outcomes and latencies are
// folded in from the reader callback. Because responses arrive in
// submission order, a FIFO of batch sizes attributes each result to its
// event count.
func pipelineWorker(target string, window int, spansOn bool, spanOrigin uint16, work <-chan []ctl.EventSpec, lat *latencyRecorder, accepted, rejected, invalid *atomic.Int64) error {
	var mu sync.Mutex
	var sizes []int
	p, err := ctl.DialPipeline(target, window, func(r ctl.BatchResult) {
		mu.Lock()
		size := sizes[0]
		sizes = sizes[1:]
		mu.Unlock()
		lat.add(r.Latency)
		if r.Err != nil {
			rejected.Add(int64(size))
			return
		}
		for _, v := range r.Verdicts {
			switch {
			case v.OK:
				accepted.Add(1)
			case v.Overloaded:
				rejected.Add(1)
			default:
				invalid.Add(1)
			}
		}
	})
	if err != nil {
		return err
	}
	if spansOn {
		p.EnableSpans(spanOrigin)
	}
	defer func() { _ = p.Close() }()
	for batch := range work {
		mu.Lock()
		sizes = append(sizes, len(batch))
		mu.Unlock()
		if err := p.SubmitBatch(batch, false); err != nil {
			if !errors.Is(err, ctl.ErrInFlight) {
				// Never reached the wire: no callback will fire, so pop the
				// size back off and count the batch as rejected here.
				mu.Lock()
				sizes = sizes[:len(sizes)-1]
				mu.Unlock()
				rejected.Add(int64(len(batch)))
			}
		}
	}
	return nil
}
