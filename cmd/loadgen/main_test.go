package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

// runJSON executes the generator and decodes its -json summary.
func runJSON(t *testing.T, args ...string) summary {
	t.Helper()
	var out bytes.Buffer
	if code := run(append(args, "-json"), &out); code != 0 {
		t.Fatalf("run(%v) = %d\n%s", args, code, out.String())
	}
	var sum summary
	if err := json.Unmarshal(out.Bytes(), &sum); err != nil {
		t.Fatalf("bad summary JSON: %v\n%s", err, out.String())
	}
	return sum
}

// TestBelowWatermarkNoRejections is the CI smoke contract: offered load
// far below the intake bound must be admitted without a single overload
// rejection.
func TestBelowWatermarkNoRejections(t *testing.T) {
	sum := runJSON(t,
		"-selfhost", "-rate", "300", "-duration", "500ms",
		"-batch", "8", "-conns", "2", "-seed", "7",
	)
	if sum.Offered == 0 || sum.Accepted == 0 {
		t.Fatalf("no load offered/accepted: %+v", sum)
	}
	if sum.Rejected != 0 || sum.RejectionRate != 0 {
		t.Errorf("rejections below watermark: %+v", sum)
	}
	if sum.Accepted != sum.Submitted {
		t.Errorf("accepted %d != submitted %d", sum.Accepted, sum.Submitted)
	}
	if sum.Server == nil {
		t.Fatal("summary missing server stats")
	}
	if sum.Server.IngestRejected != 0 || sum.Server.IngestAccepted != sum.Accepted {
		t.Errorf("server ingest counters disagree: %+v", sum.Server)
	}
}

// TestTinyWatermarkRejects drives hard load into a near-zero intake
// bound: backpressure must show up as overload rejections, and they must
// be counted consistently on both sides of the wire.
func TestTinyWatermarkRejects(t *testing.T) {
	sum := runJSON(t,
		"-selfhost", "-rate", "2000", "-duration", "500ms",
		"-batch", "32", "-conns", "2", "-watermark", "2", "-seed", "7",
	)
	if sum.Rejected == 0 {
		t.Fatalf("no rejections despite watermark 2: %+v", sum)
	}
	if sum.RejectionRate <= 0 || sum.RejectionRate > 1 {
		t.Errorf("rejection rate = %v, want (0,1]", sum.RejectionRate)
	}
	if sum.Server == nil {
		t.Fatal("summary missing server stats")
	}
	if sum.Server.IngestRejected < sum.Rejected {
		t.Errorf("server saw %d rejections, client counted %d",
			sum.Server.IngestRejected, sum.Rejected)
	}
	if sum.Server.IngestWatermark != 2 {
		t.Errorf("server watermark = %d, want 2", sum.Server.IngestWatermark)
	}
}

// TestRetriesRecoverRejections keeps the watermark small but lets the
// client back off and resubmit: retried admissions must register on the
// server.
func TestRetriesRecoverRejections(t *testing.T) {
	sum := runJSON(t,
		"-selfhost", "-rate", "1500", "-duration", "400ms",
		"-batch", "16", "-conns", "2", "-watermark", "4",
		"-retries", "4", "-seed", "7",
	)
	if sum.Accepted == 0 {
		t.Fatalf("nothing accepted: %+v", sum)
	}
	if sum.Server == nil {
		t.Fatal("summary missing server stats")
	}
	// Under this load some batch must have been rejected then readmitted.
	if sum.Server.IngestRetried == 0 {
		t.Errorf("no retried admissions recorded: %+v", sum.Server)
	}
}

func TestFlagValidation(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{},                          // neither -addr nor -selfhost
		{"-addr", "x", "-selfhost"}, // both
		{"-selfhost", "-rate", "0"}, // no load
		{"-selfhost", "-min-flows", "3", "-max-flows", "2"},
	} {
		if code := run(args, &out); code != 2 {
			t.Errorf("run(%v) = %d, want usage error", args, code)
		}
	}
}
