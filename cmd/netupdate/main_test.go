package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if code := run([]string{"-list"}); code != 0 {
		t.Errorf("-list exit = %d", code)
	}
}

func TestRunQuickExperimentWithCSV(t *testing.T) {
	dir := t.TempDir()
	if code := run([]string{"-experiment", "fig3", "-quick", "-csv", dir}); code != 0 {
		t.Fatalf("fig3 exit = %d", code)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig3_1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("empty CSV")
	}
}

func TestRunBadInvocations(t *testing.T) {
	if code := run([]string{"-experiment", "nope"}); code != 2 {
		t.Errorf("unknown experiment exit = %d, want 2", code)
	}
	if code := run([]string{}); code != 2 {
		t.Errorf("no args exit = %d, want 2", code)
	}
	if code := run([]string{"-bogusflag"}); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
}

func TestRunMultiSeed(t *testing.T) {
	if code := run([]string{"-experiment", "fig2", "-seeds", "2", "-quick"}); code != 0 {
		t.Errorf("-seeds exit = %d", code)
	}
}
