// Command netupdate regenerates the paper's evaluation figures.
//
// Usage:
//
//	netupdate -list
//	netupdate -experiment fig6 [-seed 1] [-quick] [-csv dir] [-seeds n] [-probes n]
//	          [-trace-out trace.jsonl]
//	netupdate -all [-seed 1] [-quick] [-csv dir] [-probes n]
//
// With -trace-out, every event-level simulation run writes its
// scheduling trace (arrivals, per-round decisions, event lifecycle
// spans; see internal/obs) as JSON Lines to the given file. Runs are
// delimited by their leading "run" records. Traces are deterministic:
// the same seed and flags reproduce the file byte for byte.
//
// With -seeds n > 1, the experiment runs n times under seeds
// seed..seed+n-1 and a mean/min/max summary of every headline metric is
// printed after the per-seed reports — checking that the headline numbers
// are not single-run artifacts.
//
// With -csv, every table is additionally written as a CSV file into the
// given directory (one file per table, named <experiment>_<n>.csv), ready
// for plotting.
//
// Each experiment prints the rows/series of the corresponding figure of
// "An Event-Level Abstraction for Achieving Efficiency and Fairness in
// Network Update" (ICDCS 2017), plus headline numbers compared against the
// paper's claims in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"netupdate/internal/experiments"
	"netupdate/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("netupdate", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "list available experiments")
		name     = fs.String("experiment", "", "experiment to run (see -list)")
		all      = fs.Bool("all", false, "run every experiment")
		seed     = fs.Int64("seed", 1, "random seed (equal seeds reproduce runs exactly)")
		quick    = fs.Bool("quick", false, "shrink experiments for a fast smoke run")
		csv      = fs.String("csv", "", "also write each table as CSV into this directory")
		seeds    = fs.Int("seeds", 1, "repeat the experiment under this many consecutive seeds and summarize headlines")
		probes   = fs.Int("probes", 0, "scheduler probe concurrency: 0 = GOMAXPROCS, 1 = serial (results identical; only planning wall-time changes)")
		traceOut = fs.String("trace-out", "", "write scheduling traces of all simulated runs to this JSONL file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var tracer *obs.Tracer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "netupdate: trace-out: %v\n", err)
			return 1
		}
		sink := obs.NewJSONLSink(f)
		tracer = obs.NewTracer(sink, nil)
		defer func() {
			if err := sink.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "netupdate: trace-out: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "netupdate: trace-out: %v\n", err)
			}
		}()
	}

	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-16s %s\n", e.Name, e.Summary)
		}
		return 0
	case *all:
		for _, e := range experiments.All() {
			if err := runOne(e, *seed, *quick, *probes, *csv, tracer); err != nil {
				fmt.Fprintf(os.Stderr, "netupdate: %s: %v\n", e.Name, err)
				return 1
			}
		}
		return 0
	case *name != "":
		e, ok := experiments.Find(*name)
		if !ok {
			fmt.Fprintf(os.Stderr, "netupdate: unknown experiment %q (use -list)\n", *name)
			return 2
		}
		if *seeds > 1 {
			if err := runSeeds(e, *seed, *seeds, *quick, *probes, tracer); err != nil {
				fmt.Fprintf(os.Stderr, "netupdate: %s: %v\n", e.Name, err)
				return 1
			}
			return 0
		}
		if err := runOne(e, *seed, *quick, *probes, *csv, tracer); err != nil {
			fmt.Fprintf(os.Stderr, "netupdate: %s: %v\n", e.Name, err)
			return 1
		}
		return 0
	default:
		fs.Usage()
		return 2
	}
}

func runOne(e experiments.Experiment, seed int64, quick bool, probes int, csvDir string, tracer *obs.Tracer) error {
	start := time.Now()
	rep, err := e.Run(experiments.Options{Seed: seed, Quick: quick, Probes: probes, Trace: tracer})
	if err != nil {
		return err
	}
	if _, err := rep.WriteTo(os.Stdout); err != nil {
		return err
	}
	if csvDir != "" {
		if err := writeCSVs(rep, csvDir); err != nil {
			return err
		}
	}
	fmt.Printf("(%s completed in %v)\n\n", e.Name, time.Since(start).Round(time.Millisecond))
	return nil
}

// runSeeds repeats the experiment under n consecutive seeds and prints a
// mean/min/max summary of every headline metric.
func runSeeds(e experiments.Experiment, seed int64, n int, quick bool, probes int, tracer *obs.Tracer) error {
	sums := make(map[string]float64)
	mins := make(map[string]float64)
	maxs := make(map[string]float64)
	counts := make(map[string]int)
	var order []string
	for i := 0; i < n; i++ {
		rep, err := e.Run(experiments.Options{Seed: seed + int64(i), Quick: quick, Probes: probes, Trace: tracer})
		if err != nil {
			return fmt.Errorf("seed %d: %w", seed+int64(i), err)
		}
		fmt.Printf("-- seed %d --\n", seed+int64(i))
		if _, err := rep.WriteTo(os.Stdout); err != nil {
			return err
		}
		for k, v := range rep.Headlines {
			if counts[k] == 0 {
				order = append(order, k)
				mins[k], maxs[k] = v, v
			}
			sums[k] += v
			counts[k]++
			if v < mins[k] {
				mins[k] = v
			}
			if v > maxs[k] {
				maxs[k] = v
			}
		}
	}
	sort.Strings(order)
	fmt.Printf("\n== %s headline summary over %d seeds (mean / min / max) ==\n", e.Name, n)
	for _, k := range order {
		fmt.Printf("  %-48s %8.3f / %8.3f / %8.3f\n", k, sums[k]/float64(counts[k]), mins[k], maxs[k])
	}
	return nil
}

// writeCSVs dumps each of the report's tables as <name>_<n>.csv in dir.
func writeCSVs(rep *experiments.Report, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("csv dir: %w", err)
	}
	for i, table := range rep.Tables {
		path := filepath.Join(dir, fmt.Sprintf("%s_%d.csv", rep.Name, i+1))
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("csv: %w", err)
		}
		writeErr := table.WriteCSV(f)
		if closeErr := f.Close(); writeErr == nil {
			writeErr = closeErr
		}
		if writeErr != nil {
			return fmt.Errorf("csv %s: %w", path, writeErr)
		}
	}
	return nil
}
