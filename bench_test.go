// Package netupdate_test benchmarks the reproduction: one benchmark per
// figure of the paper's evaluation (each iteration regenerates the figure
// in quick mode; run `go run ./cmd/netupdate -all` for the full-scale
// versions) plus micro-benchmarks of the hot paths (path enumeration,
// admission with migration, event cost probes, scheduler decisions) and
// the ablation studies DESIGN.md calls out.
package netupdate_test

import (
	"io"
	"testing"

	"netupdate/internal/core"
	"netupdate/internal/experiments"
	"netupdate/internal/migration"
	"netupdate/internal/netstate"
	"netupdate/internal/obs"
	"netupdate/internal/routing"
	"netupdate/internal/sched"
	"netupdate/internal/sim"
	"netupdate/internal/topology"
	"netupdate/internal/trace"
)

// benchExperiment runs one experiment per iteration in quick mode.
func benchExperiment(b *testing.B, name string) {
	b.Helper()
	exp, ok := experiments.Find(name)
	if !ok {
		b.Fatalf("unknown experiment %q", name)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(experiments.Options{Seed: int64(i + 1), Quick: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per figure of the evaluation section.

func BenchmarkFig1(b *testing.B) { benchExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B) { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B) { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// Ablation benches for the design choices DESIGN.md calls out.

func BenchmarkAblationAlpha(b *testing.B)   { benchExperiment(b, "ablation-alpha") }
func BenchmarkAblationGreedy(b *testing.B)  { benchExperiment(b, "ablation-greedy") }
func BenchmarkAblationReorder(b *testing.B) { benchExperiment(b, "ablation-reorder") }
func BenchmarkAblationChurn(b *testing.B)   { benchExperiment(b, "ablation-churn") }
func BenchmarkAblationSplit(b *testing.B)   { benchExperiment(b, "ablation-split") }
func BenchmarkAblationRuleOps(b *testing.B) { benchExperiment(b, "ablation-ruleops") }
func BenchmarkAblationOnline(b *testing.B)  { benchExperiment(b, "ablation-online") }
func BenchmarkAblationBatch(b *testing.B)   { benchExperiment(b, "ablation-batch") }

// benchEnv builds a loaded k=8 fat-tree once, outside the timed loop.
func benchEnv(b *testing.B, util float64) (*netstate.Network, *topology.FatTree, *trace.Generator) {
	b.Helper()
	ft, err := topology.NewFatTree(8, topology.Gbps)
	if err != nil {
		b.Fatal(err)
	}
	net := netstate.New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.NewRandomFit(7))
	gen, err := trace.NewGenerator(1, trace.YahooLike{}, ft.Hosts())
	if err != nil {
		b.Fatal(err)
	}
	if util > 0 {
		if _, err := trace.FillBackground(net, gen, util, 0); err != nil {
			b.Fatal(err)
		}
	}
	return net, ft, gen
}

// BenchmarkFatTreePaths measures ECMP path-set enumeration (cold cache).
func BenchmarkFatTreePaths(b *testing.B) {
	ft, err := topology.NewFatTree(8, topology.Gbps)
	if err != nil {
		b.Fatal(err)
	}
	hosts := ft.Hosts()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prov := routing.NewFatTreeProvider(ft)
		_ = prov.Paths(hosts[i%64], hosts[64+i%64])
	}
}

// BenchmarkFatTreePathsCached measures the hot (cached) lookup.
func BenchmarkFatTreePathsCached(b *testing.B) {
	ft, err := topology.NewFatTree(8, topology.Gbps)
	if err != nil {
		b.Fatal(err)
	}
	prov := routing.NewFatTreeProvider(ft)
	hosts := ft.Hosts()
	prov.Paths(hosts[0], hosts[100])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = prov.Paths(hosts[0], hosts[100])
	}
}

// BenchmarkBuildFatTree measures substrate construction.
func BenchmarkBuildFatTree(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := topology.NewFatTree(8, topology.Gbps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFillBackground measures loading the fabric to 60%.
func BenchmarkFillBackground(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ft, err := topology.NewFatTree(8, topology.Gbps)
		if err != nil {
			b.Fatal(err)
		}
		net := netstate.New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.NewRandomFit(7))
		gen, err := trace.NewGenerator(int64(i+1), trace.YahooLike{}, ft.Hosts())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := trace.FillBackground(net, gen, 0.6, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdmitFlow measures one admission (fast or slow path) at 70%
// utilization, with rollback so every iteration sees the same state.
func BenchmarkAdmitFlow(b *testing.B) {
	net, _, gen := benchEnv(b, 0.7)
	mig := migration.NewPlanner(net, 0)
	specs := gen.Specs(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := specs[i%len(specs)]
		spec.Event = 1
		f, err := net.AddFlow(spec)
		if err != nil {
			b.Fatal(err)
		}
		res, admitErr := mig.Admit(f)
		if admitErr == nil {
			if err := mig.Rollback(res); err != nil {
				b.Fatal(err)
			}
		}
		if err := net.Remove(f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProbeEvent measures the LMTF cost probe of a 50-flow event.
func BenchmarkProbeEvent(b *testing.B) {
	net, _, gen := benchEnv(b, 0.7)
	planner := core.NewPlanner(migration.NewPlanner(net, 0), core.FailSkip)
	ev := gen.Event(1, "bench", 0, 50, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := planner.Probe(ev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecision measures one scheduling decision over a 30-event queue
// for each policy.
func BenchmarkDecision(b *testing.B) {
	for _, tc := range []struct {
		name string
		mk   func() sched.Scheduler
	}{
		{"fifo", func() sched.Scheduler { return sched.FIFO{} }},
		{"lmtf", func() sched.Scheduler { return sched.NewLMTF(4, 1) }},
		{"plmtf", func() sched.Scheduler { return sched.NewPLMTF(4, 1) }},
		{"reorder", func() sched.Scheduler { return sched.Reorder{} }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			net, _, gen := benchEnv(b, 0.6)
			planner := core.NewPlanner(migration.NewPlanner(net, 0), core.FailSkip)
			q := sched.NewQueue()
			for _, ev := range gen.Events(30, 10, 40) {
				q.Push(ev)
			}
			s := tc.mk()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Pick(q, planner); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEndToEnd measures a whole simulation (10 events, k=8, 60%).
func BenchmarkEndToEnd(b *testing.B) {
	for _, tc := range []struct {
		name string
		mk   func() sched.Scheduler
	}{
		{"fifo", func() sched.Scheduler { return sched.FIFO{} }},
		{"lmtf", func() sched.Scheduler { return sched.NewLMTF(4, 1) }},
		{"plmtf", func() sched.Scheduler { return sched.NewPLMTF(4, 1) }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				net, _, gen := benchEnv(b, 0.6)
				planner := core.NewPlanner(migration.NewPlanner(net, 0), core.FailSkip)
				events := gen.Events(10, 10, 40)
				engine := sim.NewEngine(planner, tc.mk(), sim.Config{})
				b.StartTimer()
				if _, err := engine.Run(events); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTraceOverhead measures what observability costs a whole
// simulation: the same P-LMTF run untraced (the nil fast path the <5%
// decision-bench criterion guards), with the in-memory ring sink
// (cmd/updated's always-on configuration) and with a JSONL sink
// (netupdate -trace-out). scripts/bench.sh records the off-vs-ring
// delta in BENCH_<date>.json.
func BenchmarkTraceOverhead(b *testing.B) {
	for _, tc := range []struct {
		name string
		mk   func() *obs.Tracer
	}{
		{"off", func() *obs.Tracer { return nil }},
		{"ring", func() *obs.Tracer {
			return obs.NewTracer(obs.NewRingSink(4096), obs.NewSimMetrics(obs.NewRegistry()))
		}},
		{"jsonl", func() *obs.Tracer {
			return obs.NewTracer(obs.NewJSONLSink(io.Discard), obs.NewSimMetrics(obs.NewRegistry()))
		}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				net, _, gen := benchEnv(b, 0.6)
				planner := core.NewPlanner(migration.NewPlanner(net, 0), core.FailSkip)
				events := gen.Events(10, 10, 40)
				engine := sim.NewEngine(planner, sched.NewPLMTF(4, 1), sim.Config{})
				engine.SetTracer(tc.mk())
				b.StartTimer()
				if _, err := engine.Run(events); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFlowLevelEndToEnd measures the flow-level baseline runner.
func BenchmarkFlowLevelEndToEnd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		net, _, gen := benchEnv(b, 0.6)
		planner := core.NewPlanner(migration.NewPlanner(net, 0), core.FailSkip)
		events := gen.Events(10, 10, 40)
		fl := sim.NewFlowLevel(planner, sim.Config{})
		b.StartTimer()
		if _, err := fl.Run(events); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReserveRelease measures the bandwidth ledger's hot path.
func BenchmarkReserveRelease(b *testing.B) {
	g := topology.NewGraph()
	x := g.AddNode(topology.KindEdgeSwitch, "x")
	y := g.AddNode(topology.KindEdgeSwitch, "y")
	l, err := g.AddLink(x, y, topology.Gbps)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.Reserve(l, topology.Mbps); err != nil {
			b.Fatal(err)
		}
		if err := g.Release(l, topology.Mbps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegistryFlowsOn measures the link->flows inverted index query
// used by every migration-candidate scan.
func BenchmarkRegistryFlowsOn(b *testing.B) {
	net, _, _ := benchEnv(b, 0.6)
	// Find the busiest link.
	g := net.Graph()
	var busiest topology.LinkID
	for i := 0; i < g.NumLinks(); i++ {
		if net.Registry().NumFlowsOn(topology.LinkID(i)) > net.Registry().NumFlowsOn(busiest) {
			busiest = topology.LinkID(i)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = net.Registry().FlowsOn(busiest)
	}
}

// BenchmarkNetworkFork measures the scratch-state copy behind parallel
// probing: per-link reservations plus flow placements on a loaded fabric
// (topology and path caches are shared, not copied).
func BenchmarkNetworkFork(b *testing.B) {
	net, _, _ := benchEnv(b, 0.6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = net.Fork()
	}
}
